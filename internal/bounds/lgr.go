package bounds

import (
	"math"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/pb"
)

// LGR is the Lagrangian-relaxation lower bound (§3.2): dualize the reduced
// constraints with multipliers μ ≥ 0 and maximize
//
//	L(μ) = Σ_i μ_i·d_i + Σ_j min(0, α_j),  α_j = c_j − Σ_i μ_i·G_ij
//
// by projected subgradient ascent with a Polyak step rule, as outlined in
// the network-optimization literature the paper cites [12]. The responsible
// set S (§4.3) is the set of constraints with non-zero multiplier at the
// best iterate, refined by the α-sign filter on assigned variables.
type LGR struct {
	// Iterations bounds the subgradient steps per call (default 50). The
	// paper observes slow convergence on most instances — the ablation
	// bench A5 sweeps this knob.
	Iterations int
	// Lambda is the initial Polyak step scale (default 2.0).
	Lambda float64
	// HalveEvery halves Lambda after this many non-improving steps
	// (default 5).
	HalveEvery int
	// DisableAlphaFilter turns off the §4.3 refinement of ω_pl.
	DisableAlphaFilter bool
	// WarmStart seeds the multipliers with a greedy dual-ascent pass before
	// the subgradient iterations. The paper's implementation follows [12]
	// directly (cold start) and reports slow convergence — the ablation
	// bench A5 quantifies the difference.
	WarmStart bool
}

// Name implements Estimator.
func (LGR) Name() string { return "lgr" }

// dualAscentInit warm-starts the multipliers with the classic greedy
// dual-ascent heuristic for covering-style rows: rows are raised one by one
// to the point where some variable's reduced cost hits zero, keeping the
// dual (α ≥ 0 on raised terms) approximately feasible. Any μ ≥ 0 yields a
// valid bound, so the heuristic cannot compromise soundness — it only gives
// the subgradient ascent a running start (without it, the paper's observed
// slow convergence makes LGR nearly useless at small iteration budgets).
func dualAscentInit(xp *xProblem) []float64 {
	mu := make([]float64, len(xp.rows))
	rc := make([]float64, len(xp.vars))
	copy(rc, xp.cost)
	for i, xr := range xp.rows {
		if xr.rhs <= 0 {
			continue
		}
		best := math.Inf(1)
		for _, en := range xr.entries {
			if en.coef > 0 {
				if d := rc[en.local] / en.coef; d < best {
					best = d
				}
			}
		}
		if math.IsInf(best, 1) || best <= 0 {
			continue
		}
		mu[i] = best
		for _, en := range xr.entries {
			if en.coef > 0 {
				rc[en.local] -= best * en.coef
				if rc[en.local] < 0 {
					rc[en.local] = 0
				}
			}
		}
	}
	return mu
}

// Estimate implements Estimator.
func (l LGR) Estimate(e *engine.Engine, red *Reduced, cost []int64, target int64, bud Budget) Result {
	if red.Infeasible {
		return Result{Bound: InfBound, Responsible: []int{red.InfeasibleRow}}
	}
	if len(red.Rows) == 0 {
		return Result{}
	}
	// fault point "lgr.solve": panic/delay injection for resilience tests.
	fault.Fire("lgr.solve")
	iters := l.Iterations
	if iters <= 0 {
		iters = 50
	}
	lambda := l.Lambda
	if lambda <= 0 {
		lambda = 2.0
	}
	halveEvery := l.HalveEvery
	if halveEvery <= 0 {
		halveEvery = 5
	}

	xp := toXSpace(red, cost)
	m := len(xp.rows)
	mu := make([]float64, m)
	bestMu := make([]float64, m)
	bestL := 0.0 // μ = 0 gives L = Σ min(0,c_j) = 0 for non-negative costs
	if l.WarmStart {
		mu = dualAscentInit(xp)
		if v, _, _ := xp.lagrangianValue(mu, 0); v > bestL {
			bestL = v
			copy(bestMu, mu)
		}
	}

	// Polyak target: the value sufficient to prune, slightly overshot so the
	// step does not collapse as L approaches it.
	tgt := float64(target) * 1.05
	if tgt <= 0 {
		tgt = 1
	}

	grad := make([]float64, m)
	sinceImprove := 0
	incomplete := false
	if bestL >= tgt {
		iters = 0 // warm start already suffices to prune
	}
	for k := 0; k < iters; k++ {
		// Deadline propagation: the subgradient loop honours the per-node
		// budget — any prefix of the ascent still yields a sound bound from
		// the best multipliers seen so far. (Expired self-amortizes its
		// time.Now polling, so calling it every iteration is cheap.)
		if bud.Expired() {
			incomplete = true
			break
		}
		val, _, alpha := xp.lagrangianValue(mu, 0)
		if val > bestL {
			bestL = val
			copy(bestMu, mu)
			sinceImprove = 0
		} else {
			sinceImprove++
			if sinceImprove >= halveEvery {
				lambda /= 2
				sinceImprove = 0
			}
		}
		if bestL >= tgt {
			break // already enough to prune
		}
		// Subgradient: g_i = d_i − G_i·x(μ) with x_j = 1 iff α_j < 0.
		var norm2 float64
		for i, xr := range xp.rows {
			g := xr.rhs
			for _, en := range xr.entries {
				if alpha[en.local] < 0 {
					g -= en.coef
				}
			}
			grad[i] = g
			norm2 += g * g
		}
		if norm2 < 1e-12 {
			break // μ is (sub)optimal: x(μ) satisfies all dualized rows exactly
		}
		step := lambda * (tgt - val) / norm2
		if step <= 0 {
			break
		}
		for i := range mu {
			mu[i] += step * grad[i]
			if mu[i] < 0 {
				mu[i] = 0
			}
		}
	}

	// Recompute the bound at the best multipliers (identical value; the call
	// also yields S and α for the explanation). fault point "lgr.value":
	// tests corrupt the value to exercise the numerical-failure detection.
	val, s, alphaBest := xp.lagrangianValue(bestMu, 1e-9)
	val = fault.Corrupt("lgr.value", val)
	if math.IsNaN(val) || math.IsInf(val, 0) {
		return Result{Failed: true}
	}
	res := Result{Bound: ceilBound(val), Incomplete: incomplete}
	// Clamp to a known feasible completion's cost (see completionCap): a
	// rounded bound above the Lagrangian minimizer's cost, when that minimizer
	// satisfies the reduced rows, is a provable over-round.
	res.Bound = capToCompletion(res.Bound, xp, red, cost, alphaBest)
	res.Responsible = make([]int, len(s))
	for k, i := range s {
		res.Responsible[k] = xp.rows[i].engIdx
	}
	if !l.DisableAlphaFilter && len(s) > 0 {
		res.ExcludedVars = alphaFilter(s, bestMu, cost,
			func(rowIdx int, visit func(v pb.Var, xCoef float64)) {
				c := e.Cons(xp.rows[rowIdx].engIdx)
				for k, l := range c.Lits {
					xc := float64(c.Coefs[k])
					if l.IsNeg() {
						xc = -xc
					}
					visit(l.Var(), xc)
				}
			},
			func(v pb.Var) (bool, bool) {
				switch e.Value(v) {
				case engine.True:
					return true, true
				case engine.False:
					return false, true
				}
				return false, false
			})
	}
	return res
}
