package bounds

import (
	"repro/internal/cuts"
	"repro/internal/engine"
	"repro/internal/pb"
)

// maxCutSourceRows caps how many reduced rows feed one separation round:
// separation cost is per-row, and on large instances the first rows of the
// reduced problem (the engine visits constraints in store order) already
// carry the structured part worth cutting on.
const maxCutSourceRows = 128

// cutInstall is the per-estimation record of pooled cuts installed into the
// x-space problem as extra rows. Pooled cuts are valid for the *original*
// problem, so at a search node each is residualized under the current
// assignment — assigned-true terms pay into the degree, assigned-false terms
// are dropped but remembered as the cut's explanation literals (the cut
// remains violated while they stay false, which is exactly the ω_pl
// contract; see Result.ResponsibleLits).
type cutInstall struct {
	m0 int // problem rows in xp before any cut row

	// Aligned per installed cut row k (x-space row m0+k):
	ids       []int64     // pool id, the warm-start column key
	full      [][]pb.Term // the cut's full terms (α-filter needs global coefficients)
	falseLits [][]pb.Lit  // currently-false literals, the cut's explanation
	resid     []Row       // residual integer view (completion cap, tests)

	// done records pool ids already visited this estimation — installed,
	// skipped as satisfied, or rolled back — so separation rounds only
	// install genuinely new cuts.
	done map[int64]bool

	// infeasible is set when some residualized cut cannot be satisfied even
	// with all its unassigned literals true: the node admits no completion,
	// and infeasibleLits is the witnessing cut's explanation.
	infeasible     bool
	infeasibleLits []pb.Lit
}

// installCuts residualizes every pooled cut into xp. Nil-safe on the pool.
func installCuts(e *engine.Engine, xp *xProblem, pool *cuts.Pool, cost []int64) *cutInstall {
	inst := &cutInstall{m0: len(xp.rows)}
	if pool.Len() > 0 {
		inst.installNew(e, xp, pool, cost)
	}
	return inst
}

// installNew installs every pooled cut not yet visited this estimation.
// Returns the number of new x-space rows added. Stops early (leaving the
// remainder for the infeasible fast path) once any cut proves the node
// infeasible.
func (inst *cutInstall) installNew(e *engine.Engine, xp *xProblem, pool *cuts.Pool, cost []int64) int {
	if inst.done == nil {
		inst.done = make(map[int64]bool, pool.Len())
	}
	added := 0
	pool.Each(func(id int64, terms []pb.Term, degree int64) {
		if inst.infeasible || inst.done[id] {
			return
		}
		inst.done[id] = true
		if inst.installOne(e, xp, id, terms, degree, cost) {
			added++
		}
	})
	if added > 0 {
		pool.NoteApplied(added)
	}
	return added
}

// installOne residualizes one cut and, when it still binds, appends it to
// xp.rows. Reports whether a row was added.
func (inst *cutInstall) installOne(e *engine.Engine, xp *xProblem, id int64, terms []pb.Term, degree int64, cost []int64) bool {
	residDegree := degree
	var residTerms []pb.Term
	var falseLits []pb.Lit
	for _, t := range terms {
		switch e.LitValue(t.Lit) {
		case engine.True:
			residDegree -= t.Coef
		case engine.False:
			falseLits = append(falseLits, t.Lit)
		default:
			residTerms = append(residTerms, t)
		}
	}
	if residDegree <= 0 {
		return false // satisfied by the assignment alone
	}
	var sum int64
	for i := range residTerms {
		if residTerms[i].Coef > residDegree {
			residTerms[i].Coef = residDegree
		}
		sum += residTerms[i].Coef
	}
	if sum < residDegree {
		// Even all-true unassigned literals cannot cover the residual degree:
		// the globally valid cut refutes this node outright.
		inst.infeasible = true
		inst.infeasibleLits = falseLits
		return false
	}
	xr := xRow{engIdx: -1, rhs: float64(residDegree)}
	for _, t := range residTerms {
		j := xp.local(t.Lit.Var(), cost)
		a := float64(t.Coef)
		if t.Lit.IsNeg() {
			xr.entries = append(xr.entries, xEntry{j, -a})
			xr.rhs -= a
		} else {
			xr.entries = append(xr.entries, xEntry{j, a})
		}
	}
	xp.rows = append(xp.rows, xr)
	inst.ids = append(inst.ids, id)
	inst.full = append(inst.full, terms)
	inst.falseLits = append(inst.falseLits, falseLits)
	inst.resid = append(inst.resid, Row{EngIdx: -1, Terms: residTerms, Degree: residDegree})
	return true
}

// allFalseLits is the explanation for "the cut-augmented LP is infeasible":
// every installed cut's false literals (the reduced rows' own explanation
// rides separately through Result.Responsible).
func (inst *cutInstall) allFalseLits() []pb.Lit {
	var out []pb.Lit
	for _, fl := range inst.falseLits {
		out = append(out, fl...)
	}
	return out
}

// cutSnapshot captures the x-space lengths before a separation round so a
// failed re-solve can restore the exact problem the last good solution
// describes.
type cutSnapshot struct {
	rows, vars, cuts int
}

func (inst *cutInstall) snapshot(xp *xProblem) cutSnapshot {
	return cutSnapshot{rows: len(xp.rows), vars: len(xp.vars), cuts: len(inst.ids)}
}

// rollback truncates xp and the install record back to snap. Ids rolled back
// stay in done: the round is being abandoned, not retried.
func (inst *cutInstall) rollback(xp *xProblem, snap cutSnapshot) {
	for _, v := range xp.vars[snap.vars:] {
		delete(xp.varIdx, v)
	}
	xp.vars = xp.vars[:snap.vars]
	xp.cost = xp.cost[:snap.vars]
	xp.rows = xp.rows[:snap.rows]
	inst.ids = inst.ids[:snap.cuts]
	inst.full = inst.full[:snap.cuts]
	inst.falseLits = inst.falseLits[:snap.cuts]
	inst.resid = inst.resid[:snap.cuts]
}

// cutSources exposes the reduced problem's originating rows — full
// coefficients, full degree — to the separators. Only original (non-learned)
// constraints qualify: learned constraints are valid merely under the
// current upper bound, and a cut derived from one would poison the pool's
// global-validity invariant (and fail the audit replay).
func cutSources(e *engine.Engine, red *Reduced) []cuts.Source {
	n := len(red.Rows)
	if n > maxCutSourceRows {
		n = maxCutSourceRows
	}
	srcs := make([]cuts.Source, 0, n)
	for _, row := range red.Rows {
		if len(srcs) >= n {
			break
		}
		c := e.Cons(row.EngIdx)
		if c.Learned {
			continue
		}
		srcs = append(srcs, cuts.Source{EngIdx: row.EngIdx, Lits: c.Lits, Coefs: c.Coefs, Degree: c.Degree})
	}
	return srcs
}

// fracPoint adapts the LP solution to the literal-space fractional point the
// separators cut off: assigned literals take their engine value, unassigned
// ones their primal LP value (the duals of the dual LP's rows).
func fracPoint(e *engine.Engine, xp *xProblem, dual []float64) func(pb.Lit) float64 {
	return func(l pb.Lit) float64 {
		switch e.LitValue(l) {
		case engine.True:
			return 1
		case engine.False:
			return 0
		}
		x := 0.0
		if j, ok := xp.varIdx[l.Var()]; ok && j < len(dual) {
			x = dual[j]
			if x < 0 {
				x = 0
			} else if x > 1 {
				x = 1
			}
		}
		if l.IsNeg() {
			return 1 - x
		}
		return x
	}
}
