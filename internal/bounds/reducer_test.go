package bounds

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/pb"
)

// requireReducedEqual asserts that the incrementally-maintained reduction is
// bit-identical to a fresh Extract on the same engine state: same rows in the
// same order, same residual degrees, same clipped coefficients, same
// infeasibility verdict.
func requireReducedEqual(t *testing.T, step string, got, want *Reduced) {
	t.Helper()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: row count mismatch: reducer=%d extract=%d", step, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		g, w := &got.Rows[i], &want.Rows[i]
		if g.EngIdx != w.EngIdx || g.Degree != w.Degree {
			t.Fatalf("%s: row %d header mismatch: reducer={idx=%d deg=%d} extract={idx=%d deg=%d}",
				step, i, g.EngIdx, g.Degree, w.EngIdx, w.Degree)
		}
		if len(g.Terms) != len(w.Terms) {
			t.Fatalf("%s: row %d (cons %d) term count mismatch: reducer=%d extract=%d",
				step, i, w.EngIdx, len(g.Terms), len(w.Terms))
		}
		if (g.Terms == nil) != (w.Terms == nil) {
			t.Fatalf("%s: row %d (cons %d) nil-vs-empty Terms mismatch", step, i, w.EngIdx)
		}
		for k := range w.Terms {
			if g.Terms[k] != w.Terms[k] {
				t.Fatalf("%s: row %d (cons %d) term %d mismatch: reducer=%+v extract=%+v",
					step, i, w.EngIdx, k, g.Terms[k], w.Terms[k])
			}
		}
	}
	if got.Infeasible != want.Infeasible || (want.Infeasible && got.InfeasibleRow != want.InfeasibleRow) {
		t.Fatalf("%s: infeasibility mismatch: reducer={%v row=%d} extract={%v row=%d}",
			step, got.Infeasible, got.InfeasibleRow, want.Infeasible, want.InfeasibleRow)
	}
}

// checkNode compares the Reducer against Extract at the current engine state
// and verifies the active-set size invariant.
func checkNode(t *testing.T, step string, e *engine.Engine, r *Reducer) {
	t.Helper()
	if r.ActiveCount() != e.NumUnsatisfied() {
		t.Fatalf("%s: active-set drift: reducer=%d engine=%d", step, r.ActiveCount(), e.NumUnsatisfied())
	}
	requireReducedEqual(t, step, r.Reduce(), Extract(e))
}

// TestReducerMatchesExtractDifferential drives a real engine through a
// simulated CDCL-style search — decisions, propagation, conflict analysis
// with clause learning, non-trivial backjumps, full restarts, and learned-DB
// reduction — and asserts after every transition that Reducer.Reduce() is
// bit-identical to a fresh Extract and that the tracked active set agrees
// with the engine's own unsatisfied count.
func TestReducerMatchesExtractDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(9001))
	for iter := 0; iter < 120; iter++ {
		n := 8 + rng.Intn(18)
		p := randomProblem(rng, n)
		e := engine.New(p)
		r := NewReducer(e)

		if e.SeedUnits() < 0 {
			continue // root infeasible before any propagation
		}
		if ci := e.Propagate(); ci >= 0 {
			checkNode(t, "root conflict", e, r)
			continue
		}
		checkNode(t, "root", e, r)

		for step := 0; step < 60; step++ {
			switch op := rng.Intn(10); {
			case op < 6: // decide + propagate (possibly learning on conflict)
				v := e.PickBranchVar()
				if v < 0 {
					// fully assigned: restart to keep exercising transitions
					e.BacktrackTo(0)
					checkNode(t, "restart-after-full", e, r)
					continue
				}
				e.Decide(pb.MkLit(v, rng.Intn(2) == 0))
				ci := e.Propagate()
				checkNode(t, "decide", e, r)
				for ci >= 0 {
					if e.DecisionLevel() == 0 {
						break
					}
					res := e.AnalyzeConstraint(ci)
					if res.Unsat {
						break
					}
					if e.LearnAndBackjump(res) < 0 {
						break
					}
					ci = e.Propagate()
					checkNode(t, "learn+backjump", e, r)
				}
				if ci >= 0 && e.DecisionLevel() == 0 {
					step = 60 // proven infeasible; stop this instance
				}
			case op < 8: // random backjump
				if lvl := e.DecisionLevel(); lvl > 0 {
					e.BacktrackTo(rng.Intn(lvl))
					checkNode(t, "backjump", e, r)
				}
			case op < 9: // full restart
				e.BacktrackTo(0)
				checkNode(t, "restart", e, r)
			default: // learned-DB reduction
				e.ReduceDB()
				checkNode(t, "reducedb", e, r)
			}
		}
		r.Detach()
	}
}

// TestReducerSurvivesDirectLearnedAdds checks the ConsAdded notification path
// for constraints appended outside conflict analysis (the incumbent-cut /
// cardinality-cut route in core): learned constraints must never enter the
// reduced problem, while late problem constraints must.
func TestReducerSurvivesDirectLearnedAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	for iter := 0; iter < 40; iter++ {
		n := 6 + rng.Intn(10)
		p := randomProblem(rng, n)
		e := engine.New(p)
		r := NewReducer(e)
		if !decideRandom(e, rng, 1+rng.Intn(3)) {
			continue
		}
		// Learned add (like an incumbent cut): must not appear in the rows.
		terms := []pb.Term{
			{Coef: 1, Lit: pb.MkLit(pb.Var(rng.Intn(n)), false)},
			{Coef: 1, Lit: pb.MkLit(pb.Var(rng.Intn(n)), true)},
		}
		learnedIdx := e.AddCons(terms, 1, true)
		checkNode(t, "learned add", e, r)
		for _, row := range r.Reduce().Rows {
			if row.EngIdx == learnedIdx {
				t.Fatalf("iter %d: learned constraint %d leaked into reduction", iter, learnedIdx)
			}
		}
		// Problem add: must be tracked like any original constraint.
		e.AddCons(terms, 1, false)
		if e.Propagate() >= 0 {
			checkNode(t, "problem add conflict", e, r)
			continue
		}
		checkNode(t, "problem add", e, r)
		e.BacktrackTo(0)
		checkNode(t, "post-add restart", e, r)
		r.Detach()
	}
}
