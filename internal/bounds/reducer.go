package bounds

import (
	"slices"

	"repro/internal/engine"
	"repro/internal/pb"
)

// Reducer builds the reduced problem incrementally. Where Extract re-scans
// the whole constraint store and allocates fresh Row/Term slices at every
// search node, a Reducer
//
//   - maintains the set of unsatisfied problem constraints from the engine's
//     coalesced trail deltas (one engine.ConsWave callback per propagation
//     wave, pulled via FlushConsDeltas at the top of Reduce — see
//     engine.ConsWatcher), so each Reduce call touches only the constraints
//     that can contribute rows, never the full store with its thousands of
//     learned clauses; and
//   - owns reusable Row and Term scratch buffers (a flat term arena), so the
//     per-node reduction allocates nothing in steady state.
//
// Residual degrees need no bookkeeping of their own: the engine already
// maintains trueSum per constraint incrementally, and the residual is
// Degree − trueSum. Row terms are read straight off the engine's
// struct-of-arrays literal/coefficient arenas through the Cons view.
//
// The produced Reduced is bit-identical to Extract's output on the same
// engine state (same rows in the same order, same clipped coefficients, same
// infeasibility flag) — the differential property test in reducer_test.go
// enforces this across decisions, backjumps, restarts and ReduceDB.
//
// The returned *Reduced aliases the Reducer's internal buffers: it is valid
// until the next Reduce call. Estimators copy what they keep (toXSpace), so
// the single-node usage in core is safe.
type Reducer struct {
	eng *engine.Engine

	// active is the dense set of unsatisfied problem constraint indices;
	// pos[idx] is the position of idx in active (-1 when absent). The set is
	// kept unordered for O(1) add/remove and sorted lazily per Reduce so the
	// output matches Extract's store-order exactly.
	active []int32
	pos    []int32
	sorted bool

	// Reusable output buffers.
	red       Reduced
	termArena []pb.Term
	rowSpans  []rowSpan

	// Stats.
	reduces   int64
	peakRows  int
	peakTerms int
}

type rowSpan struct{ start, end int32 }

// NewReducer attaches a Reducer to e, snapshotting the current satisfaction
// state and registering for trail-delta notifications. The engine supports a
// single watcher: attaching a second Reducer replaces the first (Detach the
// old one explicitly if both must coexist — they cannot).
func NewReducer(e *engine.Engine) *Reducer {
	r := &Reducer{eng: e}
	r.resync()
	e.SetConsWatcher(r)
	return r
}

// resync rebuilds the active set from a full scan (used at attach time; the
// trail deltas keep it current afterwards).
func (r *Reducer) resync() {
	r.active = r.active[:0]
	n := r.eng.NumCons()
	if cap(r.pos) < n {
		r.pos = make([]int32, n)
	}
	r.pos = r.pos[:n]
	for i := range r.pos {
		r.pos[i] = -1
	}
	for i := 0; i < n; i++ {
		c := r.eng.Cons(i)
		if c.Learned || c.Removed() || c.Satisfied() {
			continue
		}
		r.pos[i] = int32(len(r.active))
		r.active = append(r.active, int32(i))
	}
	r.sorted = true
}

// Detach unregisters the Reducer from the engine. Reduce may still be called
// afterwards but will no longer track assignments.
func (r *Reducer) Detach() { r.eng.SetConsWatcher(nil) }

// ConsWave implements engine.ConsWatcher: one coalesced delta per
// propagation wave. The slices alias engine scratch and are consumed
// synchronously.
func (r *Reducer) ConsWave(satisfied, unsatisfied []int32) {
	for _, idx := range satisfied {
		r.remove(idx)
	}
	for _, idx := range unsatisfied {
		r.add(idx)
	}
}

// ConsAdded implements engine.ConsWatcher.
func (r *Reducer) ConsAdded(idx int, satisfied bool) {
	for len(r.pos) <= idx {
		r.pos = append(r.pos, -1)
	}
	if !satisfied {
		r.add(int32(idx))
	}
}

func (r *Reducer) add(idx int32) {
	if int(idx) < len(r.pos) && r.pos[idx] >= 0 {
		return
	}
	for len(r.pos) <= int(idx) {
		r.pos = append(r.pos, -1)
	}
	r.pos[idx] = int32(len(r.active))
	r.active = append(r.active, idx)
	r.sorted = false
}

func (r *Reducer) remove(idx int32) {
	p := r.pos[idx]
	if p < 0 {
		return
	}
	last := int32(len(r.active) - 1)
	moved := r.active[last]
	r.active[p] = moved
	r.pos[moved] = p
	r.active = r.active[:last]
	r.pos[idx] = -1
	if p != last {
		r.sorted = false
	}
}

// ActiveCount returns the current number of tracked unsatisfied problem
// constraints (test/diagnostic hook; must equal engine.NumUnsatisfied()).
// It pulls any pending wave first so the answer reflects the engine's
// current trail.
func (r *Reducer) ActiveCount() int {
	r.eng.FlushConsDeltas()
	return len(r.active)
}

// Reduces returns how many reductions this Reducer has produced.
func (r *Reducer) Reduces() int64 { return r.reduces }

// Reduce builds the reduced problem for the engine's current assignment into
// the Reducer's reusable buffers and returns it. The result aliases those
// buffers and is invalidated by the next Reduce call.
func (r *Reducer) Reduce() *Reduced {
	// Pull the coalesced satisfaction deltas accumulated since the last
	// flush (the engine batches them per propagation wave).
	r.eng.FlushConsDeltas()
	r.reduces++
	if !r.sorted {
		slices.Sort(r.active)
		for p, idx := range r.active {
			r.pos[idx] = int32(p)
		}
		r.sorted = true
	}
	red := &r.red
	red.Rows = red.Rows[:0]
	red.Infeasible = false
	red.InfeasibleRow = 0
	arena := r.termArena[:0]
	spans := r.rowSpans[:0]
	e := r.eng
	for _, ci := range r.active {
		c := e.Cons(int(ci))
		residual := c.Degree - c.TrueSum()
		start := int32(len(arena))
		var sum int64
		for k, l := range c.Lits {
			if e.LitValue(l) != engine.Unassigned {
				continue
			}
			coef := c.Coefs[k]
			if coef > residual {
				coef = residual
			}
			arena = append(arena, pb.Term{Coef: coef, Lit: l})
			sum += coef
		}
		if sum < residual && !red.Infeasible {
			red.Infeasible = true
			red.InfeasibleRow = int(ci)
		}
		spans = append(spans, rowSpan{start, int32(len(arena))})
		red.Rows = append(red.Rows, Row{EngIdx: int(ci), Degree: residual})
	}
	// Materialize the Terms slices only after the arena has stopped growing:
	// appending above may reallocate the backing array, so slicing eagerly
	// would leave earlier rows pointing at a stale copy.
	for i := range red.Rows {
		sp := spans[i]
		if sp.start == sp.end {
			red.Rows[i].Terms = nil // match Extract: fully-assigned rows carry no slice
			continue
		}
		red.Rows[i].Terms = arena[sp.start:sp.end:sp.end]
	}
	r.termArena = arena
	r.rowSpans = spans
	if len(red.Rows) > r.peakRows {
		r.peakRows = len(red.Rows)
	}
	if len(arena) > r.peakTerms {
		r.peakTerms = len(arena)
	}
	return red
}
