package bounds

import (
	"repro/internal/pb"
)

// xEntry is one coefficient of a reduced row converted to x-space
// (literals ¬x_v replaced by 1−x_v).
type xEntry struct {
	local int // index into xProblem.vars
	coef  float64
}

// xRow is a reduced row in x-space: Σ coef·x ≥ rhs.
type xRow struct {
	engIdx  int
	entries []xEntry
	rhs     float64
}

// xProblem is the x-space view of a reduced problem, shared by the LPR and
// LGR estimators.
type xProblem struct {
	vars   []pb.Var // unassigned variables appearing in the rows
	varIdx map[pb.Var]int
	rows   []xRow
	cost   []float64 // per local variable
}

// local returns the compact index of v, registering it (with its cost) on
// first sight. Cut installation extends the variable set after toXSpace when
// a pooled cut mentions a variable no reduced row does.
func (xp *xProblem) local(v pb.Var, cost []int64) int {
	if i, ok := xp.varIdx[v]; ok {
		return i
	}
	i := len(xp.vars)
	xp.varIdx[v] = i
	xp.vars = append(xp.vars, v)
	xp.cost = append(xp.cost, float64(cost[v]))
	return i
}

// toXSpace converts the reduced rows to x-space over a compact local
// variable indexing.
func toXSpace(red *Reduced, cost []int64) *xProblem {
	xp := &xProblem{varIdx: make(map[pb.Var]int)}
	for _, row := range red.Rows {
		xr := xRow{engIdx: row.EngIdx, rhs: float64(row.Degree)}
		for _, t := range row.Terms {
			j := xp.local(t.Lit.Var(), cost)
			a := float64(t.Coef)
			if t.Lit.IsNeg() {
				// a·(1−x) = a − a·x: coefficient −a, rhs reduced by a.
				xr.entries = append(xr.entries, xEntry{j, -a})
				xr.rhs -= a
			} else {
				xr.entries = append(xr.entries, xEntry{j, a})
			}
		}
		xp.rows = append(xp.rows, xr)
	}
	return xp
}

// lagrangianValue computes the weak-duality bound
//
//	L(y) = Σ_{i∈S} y_i·rhs_i + Σ_j min(0, α_j),  α_j = c_j − Σ_{i∈S} y_i·G_ij
//
// for the multipliers y (indexed like xp.rows; entries ≤ eps are treated as
// zero and excluded from S). It returns the bound value, the set S of row
// indices with positive multipliers, and the α vector (for the §4.3 filter
// and the free minimizer x_j = 1 iff α_j < 0).
func (xp *xProblem) lagrangianValue(y []float64, eps float64) (val float64, s []int, alpha []float64) {
	alpha = make([]float64, len(xp.vars))
	copy(alpha, xp.cost)
	for i, yi := range y {
		if yi <= eps {
			continue
		}
		s = append(s, i)
		val += yi * xp.rows[i].rhs
		for _, e := range xp.rows[i].entries {
			alpha[e.local] -= yi * e.coef
		}
	}
	for _, a := range alpha {
		if a < 0 {
			val += a
		}
	}
	return val, s, alpha
}

// alphaFilter implements the §4.3 refinement: for each *assigned* variable
// occurring in the responsible constraints, compute
//
//	α_v = c_v − Σ_{i∈S} y_i·G_iv
//
// using the original constraints' x-space coefficients, and exclude
//
//	v assigned 0 with α_v > margin   (freeing v cannot lower the bound)
//	v assigned 1 with α_v < −margin  (the bound already pays for freeing v)
//
// from the ω_pl explanation. isTrue/isFalse report the assignment; coefAt
// enumerates (variable, x-space coefficient) pairs of original constraint i.
func alphaFilter(
	sRows []int,
	y []float64,
	cost []int64,
	rowVars func(rowIdx int, visit func(v pb.Var, xCoef float64)),
	assignedValue func(v pb.Var) (value bool, assigned bool),
) map[pb.Var]bool {
	const margin = 1e-4
	alphaV := map[pb.Var]float64{}
	for _, i := range sRows {
		yi := y[i]
		if yi <= 0 {
			continue
		}
		rowVars(i, func(v pb.Var, xCoef float64) {
			if _, ok := alphaV[v]; !ok {
				alphaV[v] = float64(cost[v])
			}
			alphaV[v] -= yi * xCoef
		})
	}
	var excluded map[pb.Var]bool
	for v, av := range alphaV {
		val, assigned := assignedValue(v)
		if !assigned {
			continue
		}
		drop := (!val && av > margin) || (val && av < -margin)
		if drop {
			if excluded == nil {
				excluded = map[pb.Var]bool{}
			}
			excluded[v] = true
		}
	}
	return excluded
}
