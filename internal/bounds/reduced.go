// Package bounds implements the three lower-bound estimation procedures the
// paper integrates into bsolo (§3): the maximum-independent-set-of-constraints
// approximation (MIS), linear-programming relaxation (LPR) and Lagrangian
// relaxation (LGR). All three operate on the *reduced problem* at a search
// node — the unsatisfied constraints with assigned literals substituted,
// restricted to unassigned variables — and return, alongside the numeric
// bound, the set of constraints responsible for it, from which the
// bound-conflict explanation ω_pl of §4 is assembled.
//
// Soundness note. Rather than trusting the floating-point LP objective
// directly, the LPR and LGR estimators recompute the bound from the dual
// multipliers restricted to the responsible set S via the Lagrangian formula
//
//	z_S = Σ_{i∈S} y_i·d_i + Σ_j min(0, c_j − Σ_{i∈S} y_i·G_ij)
//
// which is a valid lower bound for *any* y ≥ 0 (weak duality), so numerical
// error in the simplex can only weaken the bound, never unsound-ify the
// pruning or the learned explanation clause.
package bounds

import (
	"math"
	"time"

	"repro/internal/engine"
	"repro/internal/pb"
)

// Budget bounds a single estimation call. The zero value means "no limit".
// The search derives a per-node budget from its remaining wall-clock
// allowance and threads it into the LP simplex (lp.Problem.Deadline) and the
// LGR subgradient loop, so a cycling LP or a slowly converging ascent cannot
// eat the whole node (let alone run) budget.
type Budget struct {
	// Deadline, when non-zero, is the wall-clock point at which the
	// estimator must return with whatever (sound, possibly weaker) bound it
	// has accumulated.
	Deadline time.Time
	// Cancel, when non-nil, aborts the estimation as soon as the channel is
	// closed (the search is being cancelled; any bound is fine).
	Cancel <-chan struct{}
	// Interrupt, when non-nil, is consulted on *every* Expired call (it is
	// required to be cheap — the portfolio wires an atomic board load);
	// returning true ends the estimation early with its best-so-far (sound)
	// bound, marked Incomplete. The cooperative portfolio wires this to "a
	// foreign incumbent arrived below the bound target": the target this
	// estimation was asked to beat just dropped, so finishing the full
	// computation is wasted work — return, let the search adopt the tighter
	// upper bound, and re-check the prune.
	Interrupt func() bool

	// polls amortizes the cost of the wall-clock check only: the system
	// clock is consulted every budgetPollStride-th call (and on the first),
	// keeping time.Now off the profiles of tight estimator loops. expired
	// latches the verdict.
	polls   uint32
	expired bool
}

// budgetPollStride is how many Expired calls share one real clock
// consultation. Estimator loops may therefore overshoot their *deadline* by
// up to stride−1 iterations — microseconds, far below the budget's
// granularity. Interrupt and Cancel are exempt from the stride: both are a
// single atomic load / non-blocking channel receive, and their signals are
// latency-sensitive (a foreign incumbent should stop an in-flight
// estimation on the very next poll, not up to stride−1 calls later — a lag
// the sharing benchmarks could actually observe; see TestBudgetInterrupt
// DetectionLag).
const budgetPollStride = 8

// Expired reports whether the budget is exhausted. Interrupt and Cancel are
// checked immediately on every call (worst-case detection lag: zero calls);
// only the time.Now deadline check is amortized behind budgetPollStride.
// Once expired, the result is sticky.
func (b *Budget) Expired() bool {
	if b.expired {
		return true
	}
	if b.Interrupt != nil && b.Interrupt() {
		b.expired = true
		return true
	}
	if b.Cancel != nil {
		select {
		case <-b.Cancel:
			b.expired = true
			return true
		default:
		}
	}
	if b.Deadline.IsZero() {
		return false
	}
	b.polls++
	if b.polls&(budgetPollStride-1) != 1 {
		return false
	}
	if time.Now().After(b.Deadline) {
		b.expired = true
		return true
	}
	return false
}

// InfBound is the bound value returned when the reduced problem is detected
// infeasible (the search node admits no completion at all). It is large
// enough to trigger any bound conflict yet far from int64 overflow.
const InfBound int64 = math.MaxInt64 / 4

// Row is one reduced constraint: Σ Terms ≥ Degree over unassigned variables
// only, with coefficients clipped to the residual degree.
type Row struct {
	// EngIdx is the index of the originating constraint in the engine store,
	// used to assemble the ω_pl explanation.
	EngIdx int
	Terms  []pb.Term
	Degree int64
}

// Reduced is the reduced problem at a search node.
type Reduced struct {
	Rows []Row
	// Infeasible is set when some residual constraint cannot be satisfied
	// even with all its unassigned literals true. (Propagation normally
	// detects this first; the flag guards the window between a decision and
	// the next propagation fixpoint.)
	Infeasible bool
	// InfeasibleRow is the engine index of the witnessing constraint.
	InfeasibleRow int
}

// Extract builds the reduced problem from the engine's current assignment.
// Only problem (non-learned) constraints participate: learned bound clauses
// and incumbent cuts depend on the current upper bound and would make the
// explanation circular.
func Extract(e *engine.Engine) *Reduced {
	red := &Reduced{}
	e.UnsatisfiedCons(func(idx int, c engine.Cons, residual int64) {
		row := Row{EngIdx: idx, Degree: residual}
		var sum int64
		for k, l := range c.Lits {
			if e.LitValue(l) != engine.Unassigned {
				continue
			}
			coef := c.Coefs[k]
			if coef > residual {
				coef = residual
			}
			row.Terms = append(row.Terms, pb.Term{Coef: coef, Lit: l})
			sum += coef
		}
		if sum < residual && !red.Infeasible {
			red.Infeasible = true
			red.InfeasibleRow = idx
		}
		red.Rows = append(red.Rows, row)
	})
	return red
}

// Result is the outcome of a lower-bound estimation.
type Result struct {
	// Bound is a valid lower bound on the cost of any completion of the
	// current partial assignment restricted to unassigned variables
	// (0 when nothing can be inferred; InfBound when the node is hopeless).
	Bound int64
	// Responsible lists the engine constraint indices whose current false
	// literals explain the bound (the set S of §4.2/§4.3).
	Responsible []int
	// ResponsibleLits lists currently-false literals that explain the bound
	// directly, without an engine constraint to point at: the false literals
	// of pooled cutting planes whose rows carry the LP bound. Cuts are valid
	// for the original problem, so any node keeping these literals false
	// keeps the cut's contribution — exactly the ω_pl contract, with the
	// cut's own literals standing in for a constraint's.
	ResponsibleLits []pb.Lit
	// ExcludedVars, when non-nil, lists assigned variables that the §4.3
	// α-filter proves irrelevant: their false literals may be dropped from
	// ω_pl even though they appear in responsible constraints.
	ExcludedVars map[pb.Var]bool
	// FracX, when non-nil, maps unassigned variables to their LP-relaxation
	// values; the §5 LP-guided branching heuristic selects the variable
	// closest to 0.5.
	FracX map[pb.Var]float64
	// Failed reports that the procedure failed outright (numerical
	// corruption, solver error): Bound is zero and Responsible is empty.
	// The search's fallback ladder reacts by re-estimating with a cheaper
	// procedure and, after enough consecutive failures, demoting the
	// configured method for the rest of the run.
	Failed bool
	// Incomplete reports that the procedure hit its iteration or wall-clock
	// budget: Bound is still sound, merely weaker than the converged value.
	Incomplete bool
}

// Estimator is a lower-bound procedure (§3.1–§3.2, or the MIS of [5,9]).
type Estimator interface {
	// Estimate returns a lower bound for the reduced problem. cost is the
	// global per-variable cost vector; only unassigned variables matter.
	// target is the bound that would suffice to prune (upper − path);
	// iterative estimators may stop early once they reach it. bud bounds
	// the call's wall-clock cost (Budget{} = unlimited); on expiry the
	// estimator returns its best-so-far bound with Incomplete set.
	Estimate(e *engine.Engine, red *Reduced, cost []int64, target int64, bud Budget) Result
	// Name identifies the estimator in logs and stats.
	Name() string
}

// litCost returns the cost of making literal l true: the variable's cost for
// a positive literal (x=1 pays c), zero for a negative one (x=0 is free).
func litCost(cost []int64, l pb.Lit) int64 {
	if l.IsNeg() {
		return 0
	}
	return cost[l.Var()]
}

// ceilRelEps scales the rounding tolerance of ceilBound with the bound's
// magnitude. Floating error in the simplex / subgradient recomputation is
// *relative*: at |v| ≈ 1e12 one ULP is ≈ 1.2e-4, far above the historical
// fixed 1e-6 slack, so `Ceil(v − 1e-6)` could round an accumulated-noise
// value like 1e12 + 3e-4 UP to 1e12+1 — an unsound over-round that prunes a
// node whose true bound is 1e12. A relative component can only weaken the
// bound (sound direction) while absorbing magnitude-proportional noise.
const ceilRelEps = 1e-9

// ceilBound converts a floating lower bound into a sound integer bound:
// any value within numeric noise below an integer rounds to that integer,
// where "noise" scales with |v| (see ceilRelEps). Corrupted values (NaN —
// e.g. from an injected or genuine numerical failure upstream) degrade to
// the trivial bound 0, never to garbage: int64(NaN) is platform-defined in
// Go and must not reach the pruning test.
func ceilBound(v float64) int64 {
	if math.IsNaN(v) || v <= 0 {
		return 0
	}
	if v >= float64(InfBound) {
		return InfBound
	}
	b := int64(math.Ceil(v - (1e-6 + v*ceilRelEps)))
	if b < 0 {
		return 0
	}
	return b
}

// completionCap evaluates a candidate completion of the reduced problem in
// exact integer arithmetic: if the candidate (xTrue per unassigned variable;
// variables outside the map take 0, their cheapest polarity) satisfies every
// reduced row, it returns the completion's cost and true.
//
// LPR and LGR feed the Lagrangian minimizer x_j = 1 ⇔ α_j < 0 through this:
// when that x happens to be feasible, weak duality guarantees the true bound
// is ≤ its cost, so a *rounded* bound exceeding it is a provable over-round
// (float noise) and is clamped — a known feasible completion's cost is a
// ceiling no sound lower bound may pierce.
func completionCap(red *Reduced, cost []int64, xTrue map[pb.Var]bool) (int64, bool) {
	for _, row := range red.Rows {
		var lhs int64
		for _, t := range row.Terms {
			if t.Lit.Eval(xTrue[t.Lit.Var()]) {
				lhs += t.Coef
			}
		}
		if lhs < row.Degree {
			return 0, false
		}
	}
	var c int64
	for v, tv := range xTrue {
		if tv {
			c += cost[v]
		}
	}
	return c, true
}

// capToCompletion clamps a rounded bound to the Lagrangian minimizer's cost
// when that minimizer is a feasible completion (see completionCap). alpha is
// indexed like xp.vars.
func capToCompletion(bound int64, xp *xProblem, red *Reduced, cost []int64, alpha []float64) int64 {
	if bound <= 0 || bound >= InfBound || alpha == nil {
		return bound
	}
	xTrue := make(map[pb.Var]bool, len(xp.vars))
	for j, v := range xp.vars {
		xTrue[v] = alpha[j] < 0
	}
	if c, ok := completionCap(red, cost, xTrue); ok && bound > c {
		return c
	}
	return bound
}

// None is the "plain" configuration: no lower bound estimation (the paper's
// bsolo-plain column). It always returns a zero bound.
type None struct{}

// Name implements Estimator.
func (None) Name() string { return "plain" }

// Estimate implements Estimator: no information.
func (None) Estimate(e *engine.Engine, red *Reduced, cost []int64, target int64, bud Budget) Result {
	if red.Infeasible {
		return Result{Bound: InfBound, Responsible: allRows(red)}
	}
	return Result{}
}

func allRows(red *Reduced) []int {
	out := make([]int, len(red.Rows))
	for i, r := range red.Rows {
		out[i] = r.EngIdx
	}
	return out
}
