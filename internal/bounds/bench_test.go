package bounds

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/pb"
)

// benchProblem builds a mid-size covering-flavoured instance: large enough
// that Extract's full-store scan has real cost, structured so random walks
// stay conflict-light.
func benchProblem(n, m int, seed int64) *pb.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := pb.NewProblem(n)
	for v := 0; v < n; v++ {
		p.SetCost(pb.Var(v), int64(1+rng.Intn(10)))
	}
	for i := 0; i < m; i++ {
		nt := 3 + rng.Intn(5)
		terms := make([]pb.Term, nt)
		for k := range terms {
			terms[k] = pb.Term{
				Coef: int64(1 + rng.Intn(4)),
				Lit:  pb.MkLit(pb.Var(rng.Intn(n)), false),
			}
		}
		_ = p.AddConstraint(terms, pb.GE, 2)
	}
	return p
}

// nodeWalk replays a deterministic decide/propagate/backjump walk over the
// engine, invoking visit at every node (the point where the search would
// build the reduced problem). Both reduction benchmarks replay the identical
// walk, so the only measured difference is the reduction strategy.
func nodeWalk(b *testing.B, e *engine.Engine, seed int64, visit func()) {
	rng := rand.New(rand.NewSource(seed))
	if e.SeedUnits() < 0 || e.Propagate() >= 0 {
		b.Fatal("bench instance conflicts at the root")
	}
	for step := 0; step < 400; step++ {
		if rng.Intn(12) == 0 && e.DecisionLevel() > 0 {
			e.BacktrackTo(rng.Intn(e.DecisionLevel()))
			visit()
			continue
		}
		v := e.PickBranchVar()
		if v < 0 {
			e.BacktrackTo(0)
			visit()
			continue
		}
		e.Decide(pb.MkLit(v, rng.Intn(4) != 0))
		if e.Propagate() >= 0 {
			if e.DecisionLevel() == 0 {
				b.Fatal("bench instance infeasible")
			}
			e.BacktrackTo(e.DecisionLevel() - 1)
		}
		visit()
	}
	e.BacktrackTo(0)
}

// BenchmarkExtract measures the from-scratch per-node reduction: a full scan
// over the constraint store with fresh allocations at every node.
func BenchmarkExtract(b *testing.B) {
	p := benchProblem(300, 600, 7)
	e := engine.New(p)
	var rows int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodeWalk(b, e, 99, func() {
			rows += len(Extract(e).Rows)
		})
	}
	b.ReportMetric(float64(rows)/float64(b.N), "rows/walk")
}

// BenchmarkReducerIncremental measures the persistent Reducer on the
// identical walk: trail-delta maintenance plus buffer reuse.
func BenchmarkReducerIncremental(b *testing.B) {
	p := benchProblem(300, 600, 7)
	e := engine.New(p)
	r := NewReducer(e)
	defer r.Detach()
	var rows int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodeWalk(b, e, 99, func() {
			rows += len(r.Reduce().Rows)
		})
	}
	b.ReportMetric(float64(rows)/float64(b.N), "rows/walk")
}
