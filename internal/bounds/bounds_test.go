package bounds

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/pb"
)

// bruteReduced exhaustively minimizes Σ cost over the unassigned variables
// subject to the reduced rows. Returns (optimum, feasible).
func bruteReduced(red *Reduced, cost []int64) (int64, bool) {
	varSet := map[pb.Var]bool{}
	for _, r := range red.Rows {
		for _, t := range r.Terms {
			varSet[t.Lit.Var()] = true
		}
	}
	vars := make([]pb.Var, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	if len(vars) > 20 {
		panic("bruteReduced too large")
	}
	best := int64(math.MaxInt64)
	feasible := false
	for mask := 0; mask < 1<<len(vars); mask++ {
		val := map[pb.Var]bool{}
		for i, v := range vars {
			val[v] = mask&(1<<i) != 0
		}
		ok := true
		for _, r := range red.Rows {
			var lhs int64
			for _, t := range r.Terms {
				if t.Lit.Eval(val[t.Lit.Var()]) {
					lhs += t.Coef
				}
			}
			if lhs < r.Degree {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		var obj int64
		for _, v := range vars {
			if val[v] {
				obj += cost[v]
			}
		}
		if obj < best {
			best = obj
			feasible = true
		}
	}
	return best, feasible
}

// randomProblem builds a random covering-flavoured PBO instance.
func randomProblem(rng *rand.Rand, n int) *pb.Problem {
	p := pb.NewProblem(n)
	for v := 0; v < n; v++ {
		p.SetCost(pb.Var(v), int64(rng.Intn(8)))
	}
	m := 2 + rng.Intn(6)
	for i := 0; i < m; i++ {
		nt := 1 + rng.Intn(4)
		terms := make([]pb.Term, nt)
		for k := range terms {
			terms[k] = pb.Term{
				Coef: int64(1 + rng.Intn(4)),
				Lit:  pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(3) == 0),
			}
		}
		_ = p.AddConstraint(terms, pb.GE, int64(1+rng.Intn(5)))
	}
	return p
}

// decideRandom makes up to k random decisions with propagation; returns
// false if a conflict occurred (caller skips the iteration).
func decideRandom(e *engine.Engine, rng *rand.Rand, k int) bool {
	if e.SeedUnits() < 0 {
		return false
	}
	if e.Propagate() >= 0 {
		return false
	}
	for d := 0; d < k; d++ {
		var free []pb.Var
		for v := 0; v < e.NumVars(); v++ {
			if e.Value(pb.Var(v)) == engine.Unassigned {
				free = append(free, pb.Var(v))
			}
		}
		if len(free) == 0 {
			break
		}
		v := free[rng.Intn(len(free))]
		e.Decide(pb.MkLit(v, rng.Intn(2) == 0))
		if e.Propagate() >= 0 {
			return false
		}
	}
	return true
}

func estimators() []Estimator {
	return []Estimator{
		None{},
		MIS{},
		LPR{},
		LPR{AlphaFilter: true},
		LGR{},
		LGR{Iterations: 10},
		LGR{DisableAlphaFilter: true},
		LGR{WarmStart: true},
		LGR{WarmStart: true, Iterations: 1},
		LPR{MaxIter: 3}, // anytime: iteration-capped partial bound
		LPR{ZeroSlackExplanations: true},
	}
}

// The dual-ascent warm start must never hurt: warm LGR ≥ cold LGR bound on
// covering-style problems at equal iteration budgets.
func TestLGRWarmStartAtLeastAsGood(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for iter := 0; iter < 200; iter++ {
		p := randomProblem(rng, 3+rng.Intn(5))
		e := engine.New(p)
		if !decideRandom(e, rng, rng.Intn(3)) {
			continue
		}
		red := Extract(e)
		if red.Infeasible {
			continue
		}
		cold := LGR{Iterations: 20}.Estimate(e, red, p.Cost, p.TotalCost()+1, Budget{})
		warm := LGR{Iterations: 20, WarmStart: true}.Estimate(e, red, p.Cost, p.TotalCost()+1, Budget{})
		if warm.Bound < cold.Bound {
			t.Fatalf("iter %d: warm %d < cold %d", iter, warm.Bound, cold.Bound)
		}
	}
}

// The central soundness property: every estimator's bound is ≤ the true
// optimum of the reduced problem (or the reduced problem is infeasible).
func TestBoundsNeverExceedReducedOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	ests := estimators()
	for iter := 0; iter < 500; iter++ {
		p := randomProblem(rng, 3+rng.Intn(6))
		e := engine.New(p)
		if !decideRandom(e, rng, rng.Intn(4)) {
			continue
		}
		red := Extract(e)
		opt, feasible := bruteReduced(red, p.Cost)
		for _, est := range ests {
			res := est.Estimate(e, red, p.Cost, p.TotalCost()+1, Budget{})
			if res.Bound < 0 {
				t.Fatalf("iter %d %s: negative bound %d", iter, est.Name(), res.Bound)
			}
			if !feasible {
				continue // any bound is fine; InfBound expected eventually
			}
			if res.Bound > opt {
				t.Fatalf("iter %d %s: bound %d exceeds reduced optimum %d",
					iter, est.Name(), res.Bound, opt)
			}
		}
	}
}

func TestExtractReducedProblem(t *testing.T) {
	p := pb.NewProblem(3)
	p.SetCost(0, 1)
	p.SetCost(1, 2)
	p.SetCost(2, 3)
	// 2x0 + 2x1 + 2x2 >= 4.
	if err := p.AddConstraint([]pb.Term{
		{Coef: 2, Lit: pb.PosLit(0)}, {Coef: 2, Lit: pb.PosLit(1)}, {Coef: 2, Lit: pb.PosLit(2)},
	}, pb.GE, 4); err != nil {
		t.Fatal(err)
	}
	e := engine.New(p)
	e.Decide(pb.PosLit(0))
	if e.Propagate() >= 0 {
		t.Fatal("conflict")
	}
	red := Extract(e)
	if len(red.Rows) != 1 {
		t.Fatalf("rows=%d", len(red.Rows))
	}
	r := red.Rows[0]
	if r.Degree != 2 || len(r.Terms) != 2 {
		t.Fatalf("row=%+v", r)
	}
	// Coefficients clipped to residual degree 2 (they are 2 already).
	for _, tm := range r.Terms {
		if tm.Coef != 2 {
			t.Fatalf("coef=%d", tm.Coef)
		}
	}
}

func TestExtractDetectsInfeasible(t *testing.T) {
	p := pb.NewProblem(2)
	_ = p.AddAtLeast([]pb.Lit{pb.PosLit(0), pb.PosLit(1)}, 2)
	e := engine.New(p)
	// Force x0 false without propagating (simulate the pre-fixpoint window).
	e.Decide(pb.NegLit(0))
	e.Decide(pb.NegLit(1))
	red := Extract(e)
	if !red.Infeasible {
		t.Fatal("expected infeasible flag")
	}
	for _, est := range estimators() {
		res := est.Estimate(e, red, p.Cost, 100, Budget{})
		if res.Bound != InfBound {
			t.Fatalf("%s: bound=%d want InfBound", est.Name(), res.Bound)
		}
		if len(res.Responsible) == 0 {
			t.Fatalf("%s: no responsible constraints", est.Name())
		}
	}
}

func TestMISClauseExample(t *testing.T) {
	// Two disjoint clauses: (x0:3 ∨ x1:5) and (x2:2 ∨ x3:4) with the given
	// costs ⇒ MIS bound = 3 + 2 = 5.
	p := pb.NewProblem(4)
	costs := []int64{3, 5, 2, 4}
	for v, c := range costs {
		p.SetCost(pb.Var(v), c)
	}
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	_ = p.AddClause(pb.PosLit(2), pb.PosLit(3))
	e := engine.New(p)
	red := Extract(e)
	res := MIS{}.Estimate(e, red, p.Cost, 100, Budget{})
	if res.Bound != 5 {
		t.Fatalf("bound=%d want 5", res.Bound)
	}
	if len(res.Responsible) != 2 {
		t.Fatalf("responsible=%v want both clauses", res.Responsible)
	}
}

func TestMISNegativeLiteralIsFree(t *testing.T) {
	// Clause (x0:7 ∨ ¬x1): satisfiable for free by x1=0 ⇒ bound 0.
	p := pb.NewProblem(2)
	p.SetCost(0, 7)
	_ = p.AddClause(pb.PosLit(0), pb.NegLit(1))
	e := engine.New(p)
	red := Extract(e)
	res := MIS{}.Estimate(e, red, p.Cost, 100, Budget{})
	if res.Bound != 0 {
		t.Fatalf("bound=%d want 0", res.Bound)
	}
}

func TestMISOverlappingConstraintsPicksOne(t *testing.T) {
	// Two clauses sharing x1: only one can enter the MIS.
	p := pb.NewProblem(3)
	p.SetCost(0, 4)
	p.SetCost(1, 4)
	p.SetCost(2, 4)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	_ = p.AddClause(pb.PosLit(1), pb.PosLit(2))
	e := engine.New(p)
	red := Extract(e)
	res := MIS{}.Estimate(e, red, p.Cost, 100, Budget{})
	if res.Bound != 4 {
		t.Fatalf("bound=%d want 4", res.Bound)
	}
	if len(res.Responsible) != 1 {
		t.Fatalf("responsible=%v want exactly one", res.Responsible)
	}
}

func TestLPRFractionalExample(t *testing.T) {
	// min x0 + x1 s.t. 2x0+x1 >= 2, x0+2x1 >= 2 (no clipping: coef ≤ degree):
	// z_lpr = 4/3 at x0=x1=2/3 ⇒ bound ⌈4/3⌉ = 2 (= integer optimum).
	p := pb.NewProblem(2)
	p.SetCost(0, 1)
	p.SetCost(1, 1)
	_ = p.AddConstraint([]pb.Term{{Coef: 2, Lit: pb.PosLit(0)}, {Coef: 1, Lit: pb.PosLit(1)}}, pb.GE, 2)
	_ = p.AddConstraint([]pb.Term{{Coef: 1, Lit: pb.PosLit(0)}, {Coef: 2, Lit: pb.PosLit(1)}}, pb.GE, 2)
	e := engine.New(p)
	red := Extract(e)
	res := LPR{}.Estimate(e, red, p.Cost, 100, Budget{})
	if res.Bound != 2 {
		t.Fatalf("bound=%d want 2", res.Bound)
	}
	if len(res.FracX) != 2 {
		t.Fatalf("FracX=%v", res.FracX)
	}
	for v, x := range res.FracX {
		if math.Abs(x-2.0/3.0) > 1e-5 {
			t.Fatalf("x%d=%v want 2/3", v, x)
		}
	}
}

func TestLPRTighterThanMIS(t *testing.T) {
	// Interlocking clauses where MIS can pick only one but LPR sees all:
	// pairwise clauses over {x0,x1,x2} with unit costs. LP optimum is 1.5 ⇒
	// bound 2; MIS picks a single clause ⇒ bound 1.
	p := pb.NewProblem(3)
	for v := 0; v < 3; v++ {
		p.SetCost(pb.Var(v), 1)
	}
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	_ = p.AddClause(pb.PosLit(1), pb.PosLit(2))
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(2))
	e := engine.New(p)
	red := Extract(e)
	mis := MIS{}.Estimate(e, red, p.Cost, 100, Budget{})
	lpr := LPR{}.Estimate(e, red, p.Cost, 100, Budget{})
	if mis.Bound != 1 {
		t.Fatalf("mis=%d want 1", mis.Bound)
	}
	if lpr.Bound != 2 {
		t.Fatalf("lpr=%d want 2", lpr.Bound)
	}
}

func TestLGRReachesPositiveBound(t *testing.T) {
	// Same instance as the LPR fractional example: LGR should find ≥ 1 too
	// (the Lagrangian dual equals the LP bound for this LP).
	p := pb.NewProblem(2)
	p.SetCost(0, 1)
	p.SetCost(1, 1)
	_ = p.AddConstraint([]pb.Term{{Coef: 2, Lit: pb.PosLit(0)}, {Coef: 1, Lit: pb.PosLit(1)}}, pb.GE, 2)
	_ = p.AddConstraint([]pb.Term{{Coef: 1, Lit: pb.PosLit(0)}, {Coef: 2, Lit: pb.PosLit(1)}}, pb.GE, 2)
	e := engine.New(p)
	red := Extract(e)
	res := LGR{Iterations: 200}.Estimate(e, red, p.Cost, 2, Budget{})
	if res.Bound < 1 {
		t.Fatalf("bound=%d want >= 1", res.Bound)
	}
}

func TestLGRBoundAtMostLPR(t *testing.T) {
	// The Lagrangian dual of an LP cannot exceed the LP optimum; our
	// iterative LGR must respect that on random instances.
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 200; iter++ {
		p := randomProblem(rng, 3+rng.Intn(5))
		e := engine.New(p)
		if !decideRandom(e, rng, rng.Intn(3)) {
			continue
		}
		red := Extract(e)
		if red.Infeasible {
			continue
		}
		lpr := LPR{}.Estimate(e, red, p.Cost, p.TotalCost()+1, Budget{})
		lgr := LGR{Iterations: 100}.Estimate(e, red, p.Cost, p.TotalCost()+1, Budget{})
		if lpr.Bound == 0 && lgr.Bound == 0 {
			continue
		}
		if lgr.Bound > lpr.Bound {
			t.Fatalf("iter %d: lgr %d > lpr %d", iter, lgr.Bound, lpr.Bound)
		}
	}
}

func TestResponsibleSetsAreUnsatisfiedConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for iter := 0; iter < 100; iter++ {
		p := randomProblem(rng, 4+rng.Intn(4))
		e := engine.New(p)
		if !decideRandom(e, rng, rng.Intn(3)) {
			continue
		}
		red := Extract(e)
		valid := map[int]bool{}
		for _, r := range red.Rows {
			valid[r.EngIdx] = true
		}
		for _, est := range estimators() {
			res := est.Estimate(e, red, p.Cost, p.TotalCost()+1, Budget{})
			for _, idx := range res.Responsible {
				if !valid[idx] {
					t.Fatalf("iter %d %s: responsible %d not an unsatisfied row", iter, est.Name(), idx)
				}
			}
		}
	}
}

func TestEmptyReducedProblem(t *testing.T) {
	p := pb.NewProblem(2)
	p.SetCost(0, 5)
	e := engine.New(p)
	red := Extract(e)
	for _, est := range estimators() {
		res := est.Estimate(e, red, p.Cost, 100, Budget{})
		if res.Bound != 0 {
			t.Fatalf("%s: bound=%d want 0 on empty problem", est.Name(), res.Bound)
		}
	}
}

func TestCeilBound(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{-1, 0}, {0, 0}, {0.5, 1}, {0.9999999, 1}, {1.0000001, 1}, {1.1, 2},
		{2.0, 2}, {float64(InfBound) * 2, InfBound},
	}
	for _, c := range cases {
		if got := ceilBound(c.in); got != c.want {
			t.Errorf("ceilBound(%v)=%d want %d", c.in, got, c.want)
		}
	}
}

func TestEstimatorNames(t *testing.T) {
	if (None{}).Name() != "plain" || (MIS{}).Name() != "mis" ||
		(LPR{}).Name() != "lpr" || (LGR{}).Name() != "lgr" {
		t.Fatal("names wrong")
	}
}

func TestRowLPBoundExactForClause(t *testing.T) {
	cost := []int64{9, 4, 6}
	row := &Row{
		Terms:  []pb.Term{{Coef: 1, Lit: pb.PosLit(0)}, {Coef: 1, Lit: pb.PosLit(1)}, {Coef: 1, Lit: pb.PosLit(2)}},
		Degree: 1,
	}
	if b := rowLPBound(cost, row); math.Abs(b-4) > 1e-9 {
		t.Fatalf("bound=%v want 4 (cheapest literal)", b)
	}
}

func TestRowLPBoundFractional(t *testing.T) {
	// 2x0 + 3x1 >= 4 with costs 2,9: densities 1 and 3 ⇒ take x0 fully (2
	// weight, cost 2) then 2/3 of x1 (cost 6) ⇒ bound 8.
	cost := []int64{2, 9}
	row := &Row{
		Terms:  []pb.Term{{Coef: 2, Lit: pb.PosLit(0)}, {Coef: 3, Lit: pb.PosLit(1)}},
		Degree: 4,
	}
	if b := rowLPBound(cost, row); math.Abs(b-8) > 1e-9 {
		t.Fatalf("bound=%v want 8", b)
	}
}

// The relative epsilon in ceilBound matters at large magnitudes: one ULP at
// |v| ≈ 1e12 is ≈ 1.2e-4, above the historical fixed 1e-6 slack, so the old
// Ceil(v−1e-6) rounded accumulated simplex noise like 1e12+3e-4 UP to
// 1e12+1 — an unsound over-round that prunes a node whose true bound is 1e12.
func TestCeilBoundRelativeEpsAtLargeMagnitude(t *testing.T) {
	const big = 1e12
	for _, noise := range []float64{1.5e-6, 3e-4, 2e-3} {
		noisy := big + noise // simulated float noise on a true bound of 1e12
		got := ceilBound(noisy)
		if got > int64(big) {
			t.Fatalf("ceilBound(1e12+%v)=%d over-rounds above the true bound %d",
				noise, got, int64(big))
		}
		// The slack only weakens the bound (sound direction) and stays
		// proportional: 1e-9 relative ⇒ at most ~1e3+1 below at this scale.
		if got < int64(big)-2000 {
			t.Fatalf("ceilBound(1e12+%v)=%d weakened far beyond the 1e-9 relative slack", noise, got)
		}
	}
	// Small-magnitude behaviour is unchanged by the relative component.
	if got := ceilBound(0.9999999); got != 1 {
		t.Fatalf("ceilBound(0.9999999)=%d want 1", got)
	}
	// Corrupted values degrade to the trivial bound, never to garbage.
	if got := ceilBound(math.NaN()); got != 0 {
		t.Fatalf("ceilBound(NaN)=%d want 0", got)
	}
}

// completionCap/capToCompletion: a known feasible completion's cost is a
// ceiling no sound lower bound may pierce.
func TestCompletionCapClampsOverRound(t *testing.T) {
	// Reduced problem: x0 + x1 ≥ 1 with costs {3,5}. The completion x0=1,
	// x1=0 is feasible at cost 3, so no sound lower bound may exceed 3.
	red := &Reduced{Rows: []Row{{
		EngIdx: 0,
		Terms:  []pb.Term{{Coef: 1, Lit: pb.PosLit(0)}, {Coef: 1, Lit: pb.PosLit(1)}},
		Degree: 1,
	}}}
	cost := []int64{3, 5}
	c, ok := completionCap(red, cost, map[pb.Var]bool{0: true})
	if !ok || c != 3 {
		t.Fatalf("completionCap=%d,%v want 3,true", c, ok)
	}
	// An infeasible candidate (all-false violates the row) yields no cap.
	if _, ok := completionCap(red, cost, map[pb.Var]bool{}); ok {
		t.Fatal("infeasible candidate must not produce a cap")
	}

	xp := toXSpace(red, cost)
	alpha := make([]float64, len(xp.vars))
	for j, v := range xp.vars {
		if v == 0 {
			alpha[j] = -1 // minimizer sets x0=1
		} else {
			alpha[j] = 1
		}
	}
	if got := capToCompletion(4, xp, red, cost, alpha); got != 3 {
		t.Fatalf("capToCompletion(4)=%d want clamp to the feasible completion cost 3", got)
	}
	if got := capToCompletion(2, xp, red, cost, alpha); got != 2 {
		t.Fatalf("capToCompletion(2)=%d want unchanged (below the cap)", got)
	}
	if got := capToCompletion(5, xp, red, cost, nil); got != 5 {
		t.Fatalf("capToCompletion with nil alpha must be a no-op, got %d", got)
	}
	if got := capToCompletion(InfBound, xp, red, cost, alpha); got != InfBound {
		t.Fatalf("InfBound must pass through untouched, got %d", got)
	}
}

// End-to-end regression at objective magnitudes near 1e12: every estimator's
// bound must stay ≤ the true reduced optimum (the regime where the old
// fixed-epsilon rounding could over-round float noise into an unsound prune).
func TestBoundsSoundAtHugeObjective(t *testing.T) {
	costs := []int64{999_999_999_937, 1_000_000_000_039, 1_000_000_000_181, 999_999_999_989}
	p := pb.NewProblem(4)
	for v, c := range costs {
		p.SetCost(pb.Var(v), c)
	}
	add := func(terms []pb.Term, d int64) {
		if err := p.AddConstraint(terms, pb.GE, d); err != nil {
			t.Fatal(err)
		}
	}
	add([]pb.Term{{Coef: 1, Lit: pb.PosLit(0)}, {Coef: 1, Lit: pb.PosLit(1)}}, 1)
	add([]pb.Term{{Coef: 1, Lit: pb.PosLit(1)}, {Coef: 1, Lit: pb.PosLit(2)}}, 1)
	add([]pb.Term{{Coef: 2, Lit: pb.PosLit(2)}, {Coef: 3, Lit: pb.PosLit(3)}}, 3)

	e := engine.New(p)
	red := Extract(e)
	opt, feasible := bruteReduced(red, p.Cost)
	if !feasible {
		t.Fatal("instance should be feasible")
	}
	for _, est := range estimators() {
		res := est.Estimate(e, red, p.Cost, opt, Budget{})
		if res.Failed {
			t.Fatalf("%s: failed on huge-objective instance", est.Name())
		}
		if res.Bound > opt {
			t.Fatalf("%s: bound %d exceeds true optimum %d (unsound over-round at 1e12 scale)",
				est.Name(), res.Bound, opt)
		}
	}
}
