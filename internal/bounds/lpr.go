package bounds

import (
	"math"

	"repro/internal/cuts"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/lp"
	"repro/internal/pb"
)

// LPR is the linear-programming-relaxation lower bound (§3.1): relax the
// reduced problem's variables to [0,1] and take ⌈z*_lpr⌉.
//
// Rather than the primal
//
//	min c·x  s.t.  G·x ≥ d,  0 ≤ x ≤ 1,
//
// the estimator solves the equivalent dual
//
//	min −d·y + Σ_j w_j  s.t.  −Gᵀ·y + w ≥ −c,  y, w ≥ 0,
//
// which is always feasible at (y,w) = 0 for non-negative costs, so the
// simplex needs no phase 1 and every iterate is feasible: under an iteration
// cap the current y still yields a valid (merely weaker) Lagrangian bound —
// per-node cost is bounded without ever compromising soundness. At
// optimality the duals of the dual are the primal x values, which feed the
// §5 LP-guided branching heuristic.
//
// The responsible set S (§4.2) is the set of rows with positive multiplier
// y_i — a subset of the paper's zero-slack rows, giving a stronger (smaller)
// explanation that remains sound by weak duality: the final bound is
// recomputed from the multipliers restricted to S.
//
// When Cuts is wired, the relaxation is additionally tightened with pooled
// cutting planes (lifted knapsack covers and clique cuts — internal/cuts):
// each globally valid cut is residualized under the current assignment and
// installed as one more primal row, i.e. one more y column of the dual, so
// the whole warm-start/anytime machinery applies to cut rows unchanged. New
// cuts are separated at the LP optimum (to a fixpoint at the root, one round
// at every Config.Every-th deep estimation) and the LP is re-solved through
// the warm basis after each round. Cut rows that earn a positive multiplier
// contribute the cut's false literals to the explanation instead of an
// engine row index (Result.ResponsibleLits) and bump the cut's pool
// activity.
type LPR struct {
	// MaxIter bounds simplex iterations per call (0 = 4·(m+n)+200, a cap
	// that keeps per-node cost proportional to the reduced problem size).
	MaxIter int
	// AlphaFilter enables the §4.3-style α refinement on the LP duals
	// (the paper applies it to Lagrangian relaxation; it is equally valid
	// for LP duals and off by default to match the paper).
	AlphaFilter bool
	// ZeroSlackExplanations selects the paper's literal §4.2 responsible
	// set — every row whose slack is zero in the LP solution — instead of
	// the default positive-dual rows. The zero-slack set is a superset
	// (complementary slackness), so the explanation clause is weaker but
	// matches the paper's formulation exactly.
	ZeroSlackExplanations bool
	// State, when non-nil, enables warm-started LP solves: the basis of each
	// solve is snapshotted into State and reused by the next call (see
	// LPRState). nil preserves the cold per-node behaviour.
	State *LPRState
	// Cuts, when non-nil, is the managed cut pool: pooled cuts tighten every
	// node LP, and the estimator separates new ones at LP optima under the
	// pool's budgets. nil disables cutting planes entirely.
	Cuts *cuts.Pool
}

// Name implements Estimator.
func (LPR) Name() string { return "lpr" }

// Estimate implements Estimator.
func (l LPR) Estimate(e *engine.Engine, red *Reduced, cost []int64, target int64, bud Budget) Result {
	if red.Infeasible {
		return Result{Bound: InfBound, Responsible: []int{red.InfeasibleRow}}
	}
	if len(red.Rows) == 0 {
		return Result{}
	}
	// fault point "lpr.solve": tests inject panics/delays here to exercise
	// the search's panic recovery, MIS fallback and circuit breaker.
	fault.Fire("lpr.solve")
	xp := toXSpace(red, cost)
	inst := installCuts(e, xp, l.Cuts, cost)
	if inst.infeasible {
		// A residualized pooled cut is unsatisfiable even with every
		// unassigned literal true: the node is hopeless, and the cut's false
		// literals are the whole explanation (the cut is valid for the
		// original problem, so any node keeping them false is equally dead).
		return Result{Bound: InfBound, ResponsibleLits: inst.infeasibleLits}
	}

	sol, err := l.solveDual(xp, inst, &bud)
	if err != nil {
		// Malformed LP (should not happen for Extract output): report a
		// failed call so the ladder can fall back rather than silently
		// losing pruning power node after node.
		return Result{Failed: true}
	}

	if l.Cuts != nil && sol.Status == lp.Optimal {
		depth := e.DecisionLevel()
		if l.Cuts.Probe(depth) {
			rounds := 1
			if depth == 0 {
				rounds = l.Cuts.MaxRounds() // root: separate to a fixpoint
			}
			sol = l.separationRounds(e, red, xp, inst, cost, sol, &bud, rounds)
			if inst.infeasible {
				return Result{Bound: InfBound, ResponsibleLits: inst.infeasibleLits}
			}
		}
	}

	switch sol.Status {
	case lp.Unbounded:
		// The dual is unbounded iff the primal relaxation is infeasible:
		// no completion satisfies the reduced rows and residual cuts. Every
		// installed cut joins the explanation — the certificate may lean on
		// any of them.
		return Result{Bound: InfBound, Responsible: allRows(red), ResponsibleLits: inst.allFalseLits()}
	case lp.Numerical:
		// Floating-point corruption detected inside the simplex (genuine or
		// injected via "lp.pivot"): the solution is unusable.
		return Result{Failed: true}
	case lp.Optimal, lp.IterLimit:
		if sol.X == nil {
			return Result{Incomplete: sol.Status == lp.IterLimit}
		}
		// Recompute the bound from the multipliers (sound for any y ≥ 0;
		// under IterLimit this is the anytime bound). fault point
		// "lpr.value": tests corrupt the recomputed value to exercise the
		// NaN detection below.
		m, n := len(xp.rows), len(xp.vars)
		y := sol.X[:m]
		val, s, alpha := xp.lagrangianValue(y, 1e-9)
		val = fault.Corrupt("lpr.value", val)
		if math.IsNaN(val) || math.IsInf(val, 0) {
			return Result{Failed: true}
		}
		res := Result{Bound: ceilBound(val), Incomplete: sol.Status == lp.IterLimit}
		// Clamp the rounded bound to the Lagrangian minimizer's cost when that
		// minimizer is a feasible completion: a rounded bound above a known
		// feasible completion is a provable float over-round (see completionCap).
		res.Bound = capToCompletion(res.Bound, xp, red, cost, alpha)
		for _, i := range s {
			if i < inst.m0 {
				res.Responsible = append(res.Responsible, xp.rows[i].engIdx)
				continue
			}
			// A cut row carries the bound: its false literals explain it, and
			// the pool learns the cut is earning its keep.
			k := i - inst.m0
			res.ResponsibleLits = append(res.ResponsibleLits, inst.falseLits[k]...)
			l.Cuts.Bump(inst.ids[k])
		}
		if l.ZeroSlackExplanations && sol.Status == lp.Optimal {
			// §4.2 literally: all rows with zero slack at the LP optimum.
			// The primal x values are the duals of the dual LP's rows. Cut
			// rows are excluded — the paper's responsible set is defined over
			// problem constraints, and positive-multiplier cuts are already
			// explained above.
			inS := map[int]bool{}
			for _, i := range s {
				inS[i] = true
			}
			for i, xr := range xp.rows {
				if inS[i] || xr.engIdx < 0 {
					continue
				}
				lhs := 0.0
				for _, en := range xr.entries {
					x := sol.Dual[en.local]
					lhs += en.coef * x
				}
				if lhs-xr.rhs < 1e-6 {
					res.Responsible = append(res.Responsible, xr.engIdx)
				}
			}
		}
		if sol.Status == lp.Optimal {
			// Primal x values are the duals of the dual rows.
			res.FracX = make(map[pb.Var]float64, n)
			for j, v := range xp.vars {
				x := sol.Dual[j]
				if x < 0 {
					x = 0
				} else if x > 1 {
					x = 1
				}
				res.FracX[v] = x
			}
		}
		if l.AlphaFilter {
			res.ExcludedVars = l.filter(e, xp, inst, s, y, cost)
		}
		return res
	default:
		return Result{}
	}
}

// solveDual builds and solves the dual LP of the current x-space problem
// (problem rows and installed cut rows alike become y columns). Warm keys
// use two tag bits so the three key spaces stay disjoint: y rows by engine
// index (tag 0), w columns and LP rows by variable (tag 1), cut y columns by
// pool id (tag 2) — pool ids are never reused, so a basis never misbinds to
// a different cut after eviction.
func (l LPR) solveDual(xp *xProblem, inst *cutInstall, bud *Budget) (lp.Solution, error) {
	m, n := len(xp.rows), len(xp.vars)
	maxIter := l.MaxIter
	if maxIter == 0 {
		maxIter = 4*(m+n) + 200
	}
	prob := &lp.Problem{
		NumVars:  m + n,
		Cost:     make([]float64, m+n),
		Rows:     make([]lp.Row, n),
		Lo:       make([]float64, m+n),
		Hi:       make([]float64, m+n),
		MaxIter:  maxIter,
		Deadline: bud.Deadline, // per-node bound budget reaches the simplex
	}
	for i := range prob.Hi {
		prob.Hi[i] = math.Inf(1)
	}
	for i, xr := range xp.rows {
		prob.Cost[i] = -xr.rhs // minimize −d·y
	}
	for j := 0; j < n; j++ {
		prob.Cost[m+j] = 1 // + Σ w_j
		prob.Rows[j] = lp.Row{
			RHS:     -xp.cost[j],
			Entries: []lp.Entry{{Var: m + j, Coef: 1}},
		}
	}
	for i, xr := range xp.rows {
		for _, en := range xr.entries {
			prob.Rows[en.local].Entries = append(prob.Rows[en.local].Entries,
				lp.Entry{Var: i, Coef: -en.coef})
		}
	}

	st := l.State
	if st == nil {
		return lp.Solve(prob)
	}
	// Warm path: identify LP columns and rows by search-stable keys so the
	// previous solve's basis maps onto this (re-numbered) problem.
	varKeys := make([]int64, m+n)
	for i, xr := range xp.rows {
		if xr.engIdx >= 0 {
			varKeys[i] = int64(xr.engIdx) << 2
		} else {
			varKeys[i] = int64(inst.ids[i-inst.m0])<<2 | 2
		}
	}
	for j, v := range xp.vars {
		varKeys[m+j] = int64(v)<<2 | 1
	}
	rowKeys := make([]int64, n)
	for j, v := range xp.vars {
		rowKeys[j] = int64(v)
	}
	hadBasis := st.basis != nil
	sol, next, err := lp.SolveWarm(prob, varKeys, rowKeys, st.basis)
	st.basis = next
	if err == nil {
		if sol.Warm {
			st.warmSolves.Add(1)
		} else {
			st.coldSolves.Add(1)
			if hadBasis {
				st.warmFallbacks.Add(1)
			}
		}
	}
	if err != nil || sol.Status == lp.Numerical {
		// A basis that produced (or accompanied) numerical corruption is
		// not worth keeping.
		st.Invalidate()
	}
	return sol, err
}

// separationRounds runs up to rounds separate→install→re-solve cycles from
// the LP optimum sol, returning the last trustworthy solution (always
// describing the x-space problem as left in xp).
//
// Abandonment discipline: whenever a round is cut short — the budget
// expires between rounds, or a re-solve comes back unusable — the warm
// basis snapshot in State is invalidated. The basis lease otherwise ends up
// describing a tableau with cut rows the caller's Result never saw, and the
// next estimation would warm-start from a phantom problem (the
// TestLPRCutsInterrupt* regressions pin this).
func (l LPR) separationRounds(e *engine.Engine, red *Reduced, xp *xProblem, inst *cutInstall, cost []int64, sol lp.Solution, bud *Budget, rounds int) lp.Solution {
	for round := 0; round < rounds; round++ {
		if bud.Expired() {
			l.State.Invalidate()
			return sol
		}
		frac := fracPoint(e, xp, sol.Dual)
		if l.Cuts.Separate(cutSources(e, red), frac) == 0 {
			return sol // fixpoint: nothing violated remains separable
		}
		snap := inst.snapshot(xp)
		if inst.installNew(e, xp, l.Cuts, cost) == 0 {
			return sol
		}
		if inst.infeasible {
			return sol // caller returns the infeasible result
		}
		sol2, err := l.solveDual(xp, inst, bud)
		if err != nil || sol2.Status == lp.Numerical || sol2.X == nil {
			// The augmented LP produced nothing usable: restore the problem
			// the previous solution describes and stop separating. solveDual
			// already invalidated the basis on err/Numerical; the X==nil
			// iteration-limit case must drop it too (it references the
			// augmented tableau).
			inst.rollback(xp, snap)
			l.State.Invalidate()
			return sol
		}
		sol = sol2
		if sol.Status != lp.Optimal {
			// Unbounded (node infeasible) or an anytime IterLimit bound:
			// either way there is no optimum to separate from.
			return sol
		}
	}
	return sol
}

func (l LPR) filter(e *engine.Engine, xp *xProblem, inst *cutInstall, s []int, y []float64, cost []int64) map[pb.Var]bool {
	return alphaFilter(s, y, cost,
		func(rowIdx int, visit func(v pb.Var, xCoef float64)) {
			if rowIdx >= inst.m0 {
				// Cut row: the pooled cut is a globally valid constraint in
				// its own right, so the α accounting uses its full terms,
				// exactly as e.Cons supplies them for problem rows.
				for _, t := range inst.full[rowIdx-inst.m0] {
					xc := float64(t.Coef)
					if t.Lit.IsNeg() {
						xc = -xc
					}
					visit(t.Lit.Var(), xc)
				}
				return
			}
			c := e.Cons(xp.rows[rowIdx].engIdx)
			for k, l := range c.Lits {
				xc := float64(c.Coefs[k])
				if l.IsNeg() {
					xc = -xc
				}
				visit(l.Var(), xc)
			}
		},
		func(v pb.Var) (bool, bool) {
			switch e.Value(v) {
			case engine.True:
				return true, true
			case engine.False:
				return false, true
			}
			return false, false
		})
}
