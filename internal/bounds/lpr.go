package bounds

import (
	"math"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/lp"
	"repro/internal/pb"
)

// LPR is the linear-programming-relaxation lower bound (§3.1): relax the
// reduced problem's variables to [0,1] and take ⌈z*_lpr⌉.
//
// Rather than the primal
//
//	min c·x  s.t.  G·x ≥ d,  0 ≤ x ≤ 1,
//
// the estimator solves the equivalent dual
//
//	min −d·y + Σ_j w_j  s.t.  −Gᵀ·y + w ≥ −c,  y, w ≥ 0,
//
// which is always feasible at (y,w) = 0 for non-negative costs, so the
// simplex needs no phase 1 and every iterate is feasible: under an iteration
// cap the current y still yields a valid (merely weaker) Lagrangian bound —
// per-node cost is bounded without ever compromising soundness. At
// optimality the duals of the dual are the primal x values, which feed the
// §5 LP-guided branching heuristic.
//
// The responsible set S (§4.2) is the set of rows with positive multiplier
// y_i — a subset of the paper's zero-slack rows, giving a stronger (smaller)
// explanation that remains sound by weak duality: the final bound is
// recomputed from the multipliers restricted to S.
type LPR struct {
	// MaxIter bounds simplex iterations per call (0 = 4·(m+n)+200, a cap
	// that keeps per-node cost proportional to the reduced problem size).
	MaxIter int
	// AlphaFilter enables the §4.3-style α refinement on the LP duals
	// (the paper applies it to Lagrangian relaxation; it is equally valid
	// for LP duals and off by default to match the paper).
	AlphaFilter bool
	// ZeroSlackExplanations selects the paper's literal §4.2 responsible
	// set — every row whose slack is zero in the LP solution — instead of
	// the default positive-dual rows. The zero-slack set is a superset
	// (complementary slackness), so the explanation clause is weaker but
	// matches the paper's formulation exactly.
	ZeroSlackExplanations bool
	// State, when non-nil, enables warm-started LP solves: the basis of each
	// solve is snapshotted into State and reused by the next call (see
	// LPRState). nil preserves the cold per-node behaviour.
	State *LPRState
}

// Name implements Estimator.
func (LPR) Name() string { return "lpr" }

// Estimate implements Estimator.
func (l LPR) Estimate(e *engine.Engine, red *Reduced, cost []int64, target int64, bud Budget) Result {
	if red.Infeasible {
		return Result{Bound: InfBound, Responsible: []int{red.InfeasibleRow}}
	}
	if len(red.Rows) == 0 {
		return Result{}
	}
	// fault point "lpr.solve": tests inject panics/delays here to exercise
	// the search's panic recovery, MIS fallback and circuit breaker.
	fault.Fire("lpr.solve")
	xp := toXSpace(red, cost)
	m, n := len(xp.rows), len(xp.vars)

	maxIter := l.MaxIter
	if maxIter == 0 {
		maxIter = 4*(m+n) + 200
	}
	prob := &lp.Problem{
		NumVars: m + n,
		Cost:    make([]float64, m+n),
		Rows:    make([]lp.Row, n),
		Lo:       make([]float64, m+n),
		Hi:       make([]float64, m+n),
		MaxIter:  maxIter,
		Deadline: bud.Deadline, // per-node bound budget reaches the simplex
	}
	for i := range prob.Hi {
		prob.Hi[i] = math.Inf(1)
	}
	for i, xr := range xp.rows {
		prob.Cost[i] = -xr.rhs // minimize −d·y
	}
	for j := 0; j < n; j++ {
		prob.Cost[m+j] = 1 // + Σ w_j
		prob.Rows[j] = lp.Row{
			RHS:     -xp.cost[j],
			Entries: []lp.Entry{{Var: m + j, Coef: 1}},
		}
	}
	for i, xr := range xp.rows {
		for _, en := range xr.entries {
			prob.Rows[en.local].Entries = append(prob.Rows[en.local].Entries,
				lp.Entry{Var: i, Coef: -en.coef})
		}
	}

	var sol lp.Solution
	var err error
	if st := l.State; st != nil {
		// Warm path: identify LP columns and rows by search-stable keys so
		// the previous node's basis maps onto this node's (re-numbered)
		// problem. y_i is keyed by its engine constraint index, w_j and row j
		// by the pb.Var they belong to; the two key spaces are disjoint by
		// the low tag bit.
		varKeys := make([]int64, m+n)
		for i, xr := range xp.rows {
			varKeys[i] = int64(xr.engIdx) << 1
		}
		for j, v := range xp.vars {
			varKeys[m+j] = int64(v)<<1 | 1
		}
		rowKeys := make([]int64, n)
		for j, v := range xp.vars {
			rowKeys[j] = int64(v)
		}
		hadBasis := st.basis != nil
		var next *lp.Basis
		sol, next, err = lp.SolveWarm(prob, varKeys, rowKeys, st.basis)
		st.basis = next
		if err == nil {
			if sol.Warm {
				st.warmSolves.Add(1)
			} else {
				st.coldSolves.Add(1)
				if hadBasis {
					st.warmFallbacks.Add(1)
				}
			}
		}
		if err != nil || sol.Status == lp.Numerical {
			// A basis that produced (or accompanied) numerical corruption is
			// not worth keeping.
			st.Invalidate()
		}
	} else {
		sol, err = lp.Solve(prob)
	}
	if err != nil {
		// Malformed LP (should not happen for Extract output): report a
		// failed call so the ladder can fall back rather than silently
		// losing pruning power node after node.
		return Result{Failed: true}
	}
	switch sol.Status {
	case lp.Unbounded:
		// The dual is unbounded iff the primal relaxation is infeasible:
		// no completion satisfies the reduced rows.
		return Result{Bound: InfBound, Responsible: allRows(red)}
	case lp.Numerical:
		// Floating-point corruption detected inside the simplex (genuine or
		// injected via "lp.pivot"): the solution is unusable.
		return Result{Failed: true}
	case lp.Optimal, lp.IterLimit:
		if sol.X == nil {
			return Result{Incomplete: sol.Status == lp.IterLimit}
		}
		// Recompute the bound from the multipliers (sound for any y ≥ 0;
		// under IterLimit this is the anytime bound). fault point
		// "lpr.value": tests corrupt the recomputed value to exercise the
		// NaN detection below.
		y := sol.X[:m]
		val, s, alpha := xp.lagrangianValue(y, 1e-9)
		val = fault.Corrupt("lpr.value", val)
		if math.IsNaN(val) || math.IsInf(val, 0) {
			return Result{Failed: true}
		}
		res := Result{Bound: ceilBound(val), Incomplete: sol.Status == lp.IterLimit}
		// Clamp the rounded bound to the Lagrangian minimizer's cost when that
		// minimizer is a feasible completion: a rounded bound above a known
		// feasible completion is a provable float over-round (see completionCap).
		res.Bound = capToCompletion(res.Bound, xp, red, cost, alpha)
		res.Responsible = make([]int, len(s))
		for k, i := range s {
			res.Responsible[k] = xp.rows[i].engIdx
		}
		if l.ZeroSlackExplanations && sol.Status == lp.Optimal {
			// §4.2 literally: all rows with zero slack at the LP optimum.
			// The primal x values are the duals of the dual LP's rows.
			inS := map[int]bool{}
			for _, i := range s {
				inS[i] = true
			}
			for i, xr := range xp.rows {
				if inS[i] {
					continue
				}
				lhs := 0.0
				for _, en := range xr.entries {
					x := sol.Dual[en.local]
					lhs += en.coef * x
				}
				if lhs-xr.rhs < 1e-6 {
					res.Responsible = append(res.Responsible, xr.engIdx)
				}
			}
		}
		if sol.Status == lp.Optimal {
			// Primal x values are the duals of the dual rows.
			res.FracX = make(map[pb.Var]float64, n)
			for j, v := range xp.vars {
				x := sol.Dual[j]
				if x < 0 {
					x = 0
				} else if x > 1 {
					x = 1
				}
				res.FracX[v] = x
			}
		}
		if l.AlphaFilter {
			res.ExcludedVars = l.filter(e, xp, s, y, cost)
		}
		return res
	default:
		return Result{}
	}
}

func (l LPR) filter(e *engine.Engine, xp *xProblem, s []int, y []float64, cost []int64) map[pb.Var]bool {
	return alphaFilter(s, y, cost,
		func(rowIdx int, visit func(v pb.Var, xCoef float64)) {
			c := e.Cons(xp.rows[rowIdx].engIdx)
			for k, l := range c.Lits {
				xc := float64(c.Coefs[k])
				if l.IsNeg() {
					xc = -xc
				}
				visit(l.Var(), xc)
			}
		},
		func(v pb.Var) (bool, bool) {
			switch e.Value(v) {
			case engine.True:
				return true, true
			case engine.False:
				return false, true
			}
			return false, false
		})
}
