package bounds

import (
	"testing"
	"time"
)

// TestBudgetInterruptDetectionLag pins the worst-case detection lag of the
// Budget's Interrupt signal at zero calls: the amortized poll stride used to
// delay a foreign-incumbent interrupt by up to stride−1 Expired calls (the
// signal was only consulted on every 8th call), so a member could keep
// grinding a bound estimation for 7 more subgradient iterations after the
// target it was chasing had already dropped. Interrupt must now be observed
// on the very next Expired call after it starts firing.
func TestBudgetInterruptDetectionLag(t *testing.T) {
	for _, armAfter := range []int{0, 1, 2, 7, 8, 9, 100} {
		calls := 0
		fired := false
		bud := Budget{Interrupt: func() bool {
			fired = calls >= armAfter
			return fired
		}}
		detected := -1
		for i := 0; i < armAfter+2; i++ {
			calls = i
			if bud.Expired() {
				detected = i
				break
			}
		}
		if detected != armAfter {
			t.Fatalf("armAfter=%d: interrupt detected at call %d, want %d (zero lag)",
				armAfter, detected, armAfter)
		}
		// Sticky after detection, without re-consulting the signal.
		fired = false
		if !bud.Expired() {
			t.Fatalf("armAfter=%d: expired verdict not sticky", armAfter)
		}
	}
}

// TestBudgetCancelDetectionLag pins the same zero-call lag for the Cancel
// channel: the first Expired call after the channel closes must report
// expiry, regardless of how many calls the amortized clock stride already
// consumed.
func TestBudgetCancelDetectionLag(t *testing.T) {
	cancel := make(chan struct{})
	bud := Budget{Cancel: cancel, Deadline: time.Now().Add(time.Hour)}
	// Burn an arbitrary, non-stride-aligned number of calls first.
	for i := 0; i < 13; i++ {
		if bud.Expired() {
			t.Fatalf("call %d: expired before cancellation", i)
		}
	}
	close(cancel)
	if !bud.Expired() {
		t.Fatal("first Expired call after close(cancel) must report expiry")
	}
	if !bud.Expired() {
		t.Fatal("expired verdict must be sticky")
	}
}

// TestBudgetDeadlineStillAmortized documents the surviving amortization: a
// passed deadline (with no Interrupt/Cancel armed) is detected within one
// full poll stride, and the verdict latches.
func TestBudgetDeadlineStillAmortized(t *testing.T) {
	bud := Budget{Deadline: time.Now().Add(-time.Second)}
	detected := -1
	for i := 0; i < budgetPollStride+1; i++ {
		if bud.Expired() {
			detected = i
			break
		}
	}
	if detected < 0 {
		t.Fatalf("passed deadline not detected within %d calls", budgetPollStride+1)
	}
	if !bud.Expired() {
		t.Fatal("deadline expiry must be sticky")
	}
}

// TestBudgetZeroValueNeverExpires guards the zero-cost default: a Budget
// with no deadline, no cancel channel and no interrupt never expires and
// never consults the clock.
func TestBudgetZeroValueNeverExpires(t *testing.T) {
	var bud Budget
	for i := 0; i < 64; i++ {
		if bud.Expired() {
			t.Fatal("zero-value budget expired")
		}
	}
}

func TestStatsClone(t *testing.T) {
	var s Stats
	s.Incremental = true
	s.Reduces = 3
	s.Record("lpr", Result{Bound: 5}, time.Millisecond, false)
	cl := s.Clone()
	s.Record("lpr", Result{Bound: 7}, time.Millisecond, false)
	s.Record("mis", Result{Bound: 1}, time.Millisecond, false)
	if got := cl.Per["lpr"].Calls; got != 1 {
		t.Fatalf("clone shares ProcStats with original: calls=%d want 1", got)
	}
	if _, ok := cl.Per["mis"]; ok {
		t.Fatal("clone shares Per map with original")
	}
	if !cl.Incremental || cl.Reduces != 3 {
		t.Fatal("scalar fields not copied")
	}
}
