// Package opb reads and writes pseudo-Boolean instances in the OPB format
// used by the pseudo-Boolean evaluation series and by solvers such as bsolo,
// PBS and Galena.
//
// Supported syntax (one statement per line, '*' starts a comment):
//
//	min: +1 x1 +2 x2 ;
//	+1 x1 +2 x2 >= 2 ;
//	+3 x1 -2 x3 = 1 ;
//	-1 x2 +1 x4 <= 0 ;
//
// Variables are named x<k> with k ≥ 1, or arbitrary identifiers (a letter
// or '_' followed by letters, digits or '_'); negated literals are written
// ~x<k>. Coefficients may omit the leading '+'.
package opb

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/pb"
)

// Parse reads an OPB instance from r and returns the normalized problem.
// Negative objective coefficients are normalized via x = 1 − ¬x: the cost is
// attached to the complemented polarity by introducing the substitution in
// the objective offset, keeping all pb.Problem costs non-negative.
func Parse(r io.Reader) (*pb.Problem, error) {
	p := &pb.Problem{}
	vars := map[string]pb.Var{}
	getVar := func(name string) pb.Var {
		if v, ok := vars[name]; ok {
			return v
		}
		v := pb.Var(p.NumVars)
		p.NumVars++
		p.Cost = append(p.Cost, 0)
		p.Names = append(p.Names, name)
		vars[name] = v
		return v
	}

	// negCost[v] accumulates cost placed on x_v = 0 from negative objective
	// coefficients; folded into Cost/CostOffset at the end.
	var negCost map[pb.Var]int64
	sawObjective := false
	products := newProductTable(p)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	// Statements may span lines until ';'. Accumulate tokens.
	var pending []string
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		toks := pending
		pending = nil
		isObj := false
		if strings.EqualFold(toks[0], "min:") {
			isObj = true
			toks = toks[1:]
		} else if strings.EqualFold(toks[0], "max:") {
			return fmt.Errorf("opb: line %d: max: objectives are not supported (negate to min:)", lineNo)
		}
		// Split at relational operator for constraints.
		relIdx := -1
		var cmp pb.Cmp
		for i, t := range toks {
			switch t {
			case ">=":
				relIdx, cmp = i, pb.GE
			case "<=":
				relIdx, cmp = i, pb.LE
			case "=":
				relIdx, cmp = i, pb.EQ
			}
			if relIdx >= 0 {
				break
			}
		}
		if isObj && relIdx >= 0 {
			return fmt.Errorf("opb: line %d: relational operator in objective", lineNo)
		}
		if !isObj && relIdx < 0 {
			return fmt.Errorf("opb: line %d: constraint without relational operator", lineNo)
		}

		lhsToks := toks
		var rhs int64
		if !isObj {
			lhsToks = toks[:relIdx]
			rhsToks := toks[relIdx+1:]
			if len(rhsToks) != 1 {
				return fmt.Errorf("opb: line %d: expected single right-hand side, got %v", lineNo, rhsToks)
			}
			var err error
			rhs, err = strconv.ParseInt(rhsToks[0], 10, 64)
			if err != nil {
				return fmt.Errorf("opb: line %d: bad right-hand side %q", lineNo, rhsToks[0])
			}
		}

		terms, err := parseTerms(lhsToks, getVar, lineNo, products)
		if err != nil {
			return err
		}
		if isObj {
			if sawObjective {
				return fmt.Errorf("opb: line %d: duplicate objective", lineNo)
			}
			sawObjective = true
			for _, t := range terms {
				coef := t.Coef
				v := t.Lit.Var()
				var err error
				if t.Lit.IsNeg() {
					// c·¬x = c − c·x: offset c, coefficient −c on x.
					if p.CostOffset, err = pb.CheckedAdd(p.CostOffset, coef); err != nil {
						return fmt.Errorf("opb: line %d: objective offset: %w", lineNo, err)
					}
					if coef, err = pb.CheckedNeg(coef); err != nil {
						return fmt.Errorf("opb: line %d: objective coefficient: %w", lineNo, err)
					}
				}
				if coef >= 0 {
					if p.Cost[v], err = pb.CheckedAdd(p.Cost[v], coef); err != nil {
						return fmt.Errorf("opb: line %d: objective coefficient on %s: %w",
							lineNo, name(p, v), err)
					}
				} else {
					// coef·x = coef + (−coef)·¬x: move the constant into the
					// offset and pay −coef when x = 0.
					if p.CostOffset, err = pb.CheckedAdd(p.CostOffset, coef); err != nil {
						return fmt.Errorf("opb: line %d: objective offset: %w", lineNo, err)
					}
					if negCost == nil {
						negCost = map[pb.Var]int64{}
					}
					nc, err := pb.CheckedNeg(coef)
					if err != nil {
						return fmt.Errorf("opb: line %d: objective coefficient: %w", lineNo, err)
					}
					if negCost[v], err = pb.CheckedAdd(negCost[v], nc); err != nil {
						return fmt.Errorf("opb: line %d: objective coefficient on %s: %w",
							lineNo, name(p, v), err)
					}
				}
			}
			return nil
		}
		return p.AddConstraint(terms, cmp, rhs)
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '*'); i >= 0 {
			line = line[:i]
		}
		// Tokenize; ';' terminates a statement.
		for _, field := range strings.Fields(line) {
			for {
				semi := strings.IndexByte(field, ';')
				if semi < 0 {
					pending = append(pending, field)
					break
				}
				if semi > 0 {
					pending = append(pending, field[:semi])
				}
				if err := flush(); err != nil {
					return nil, err
				}
				field = field[semi+1:]
				if field == "" {
					break
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if err := products.flushDefinitions(); err != nil {
		return nil, err
	}

	// Fold negative objective coefficients: −c·x = −c + c·¬x, i.e. cost c on
	// x=0. Net cost on v is Cost[v] − negCost[v]; whichever polarity is
	// cheaper absorbs the offset.
	for v, nc := range negCost {
		net, err := pb.CheckedSub(p.Cost[v], nc)
		if err != nil {
			return nil, fmt.Errorf("opb: net objective coefficient on %s: %w", name(p, v), err)
		}
		if net >= 0 {
			// Cost[v]·x + nc·(1−x) = nc + net·x.
			p.Cost[v] = net
			if p.CostOffset, err = pb.CheckedAdd(p.CostOffset, nc); err != nil {
				return nil, fmt.Errorf("opb: objective offset: %w", err)
			}
		} else {
			// Cheaper to pay on x=1 side: offset Cost[v], remaining −net on x=0.
			if p.CostOffset, err = pb.CheckedAdd(p.CostOffset, p.Cost[v]); err != nil {
				return nil, fmt.Errorf("opb: objective offset: %w", err)
			}
			p.Cost[v] = 0
			// Penalize x_v = 0 by −net: add constraint-free cost via a fresh
			// complement variable y ≡ ¬x with cost −net.
			y := pb.Var(p.NumVars)
			p.NumVars++
			p.Cost = append(p.Cost, -net)
			p.Names = append(p.Names, "_n"+name(p, v))
			// y + x >= 1 and ¬y + ¬x >= 1 enforce y = ¬x.
			if err := p.AddClause(pb.PosLit(y), pb.PosLit(v)); err != nil {
				return nil, err
			}
			if err := p.AddClause(pb.NegLit(y), pb.NegLit(v)); err != nil {
				return nil, err
			}
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func name(p *pb.Problem, v pb.Var) string {
	if int(v) < len(p.Names) && p.Names[v] != "" {
		return p.Names[v]
	}
	return fmt.Sprintf("x%d", int(v)+1)
}

// validName reports whether s is an acceptable variable identifier: a
// letter or underscore followed by letters, digits or underscores. This is
// the same class the writers emit (x<k>, user names, _n/_p synthetics), so
// everything the package writes re-parses, and nothing that parses can
// collide with the "-" false-literal marker of the value-line format.
func validName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(s) > 0
}

func parseTerms(toks []string, getVar func(string) pb.Var, lineNo int, products *productTable) ([]pb.Term, error) {
	var terms []pb.Term
	i := 0
	for i < len(toks) {
		coefTok := toks[i]
		coef, err := strconv.ParseInt(coefTok, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("opb: line %d: expected coefficient, got %q", lineNo, coefTok)
		}
		i++
		if i >= len(toks) {
			return nil, fmt.Errorf("opb: line %d: coefficient %q without literal", lineNo, coefTok)
		}
		// One or more literal tokens follow (more than one = a nonlinear
		// product term, per the OPB specification).
		var lits []pb.Lit
		for i < len(toks) {
			if _, err := strconv.ParseInt(toks[i], 10, 64); err == nil {
				break // next coefficient
			}
			litTok := toks[i]
			i++
			neg := false
			if strings.HasPrefix(litTok, "~") {
				neg = true
				litTok = litTok[1:]
			}
			if litTok == "" {
				return nil, fmt.Errorf("opb: line %d: empty literal", lineNo)
			}
			if !validName(litTok) {
				// Identifier syntax only: a stray operator token ("-", "=")
				// must be a parse error, not a variable. (Differential-fuzzer
				// finding: a variable literally named "-" survives solving
				// but corrupts the value-line round trip, where "-" is the
				// false-literal prefix.)
				return nil, fmt.Errorf("opb: line %d: invalid variable name %q", lineNo, litTok)
			}
			lits = append(lits, pb.MkLit(getVar(litTok), neg))
		}
		if len(lits) == 0 {
			return nil, fmt.Errorf("opb: line %d: coefficient %q without literal", lineNo, coefTok)
		}
		lit, err := products.literal(lits)
		if err != nil {
			return nil, fmt.Errorf("opb: line %d: %w", lineNo, err)
		}
		terms = append(terms, pb.Term{Coef: coef, Lit: lit})
	}
	return terms, nil
}

// ParseString parses an OPB instance from a string.
func ParseString(s string) (*pb.Problem, error) {
	return Parse(strings.NewReader(s))
}

// Write renders p in OPB syntax. Variables are written using p.Names when
// available and x<k> (1-based) otherwise. The objective offset, if nonzero,
// is recorded in a comment (OPB has no offset syntax).
func Write(w io.Writer, p *pb.Problem) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "* #variable= %d #constraint= %d\n", p.NumVars, len(p.Constraints))
	if p.CostOffset != 0 {
		fmt.Fprintf(bw, "* objective offset = %d\n", p.CostOffset)
	}
	if p.HasObjective() {
		bw.WriteString("min:")
		for v := 0; v < p.NumVars; v++ {
			if p.Cost[v] != 0 {
				fmt.Fprintf(bw, " +%d %s", p.Cost[v], name(p, pb.Var(v)))
			}
		}
		bw.WriteString(" ;\n")
	}
	for _, c := range p.Constraints {
		// Deterministic term order: as stored (already sorted by Normalize).
		for i, t := range c.Terms {
			if i > 0 {
				bw.WriteByte(' ')
			}
			lit := name(p, t.Lit.Var())
			if t.Lit.IsNeg() {
				lit = "~" + lit
			}
			fmt.Fprintf(bw, "+%d %s", t.Coef, lit)
		}
		fmt.Fprintf(bw, " >= %d ;\n", c.Degree)
	}
	return bw.Flush()
}

// WriteString renders p in OPB syntax and returns it as a string.
func WriteString(p *pb.Problem) string {
	var sb strings.Builder
	_ = Write(&sb, p)
	return sb.String()
}

// SortedVarNames returns the distinct variable names of p in deterministic
// order; useful for tests and diagnostics.
func SortedVarNames(p *pb.Problem) []string {
	names := make([]string, p.NumVars)
	for v := 0; v < p.NumVars; v++ {
		names[v] = name(p, pb.Var(v))
	}
	sort.Strings(names)
	return names
}
