package opb

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/pb"
)

func TestParseSimple(t *testing.T) {
	src := `
* a comment
min: +1 x1 +2 x2 ;
+1 x1 +1 x2 >= 1 ;
`
	p, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumVars != 2 {
		t.Fatalf("vars=%d", p.NumVars)
	}
	if p.Cost[0] != 1 || p.Cost[1] != 2 {
		t.Fatalf("costs=%v", p.Cost)
	}
	if len(p.Constraints) != 1 {
		t.Fatalf("constraints=%d", len(p.Constraints))
	}
	r := pb.BruteForce(p)
	if !r.Feasible || r.Optimum != 1 {
		t.Fatalf("brute force: %+v", r)
	}
}

func TestParseMultilineStatement(t *testing.T) {
	src := "min: +1 x1\n +2 x2 ;\n+1 x1 +1 x2\n >= 1 ;"
	p, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumVars != 2 || len(p.Constraints) != 1 {
		t.Fatalf("parsed wrong: vars=%d cons=%d", p.NumVars, len(p.Constraints))
	}
}

func TestParseNegatedLiterals(t *testing.T) {
	src := "+2 ~x1 +3 x2 >= 2 ;"
	p, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Constraints[0]
	found := false
	for _, tm := range c.Terms {
		if tm.Lit.IsNeg() {
			found = true
		}
	}
	if !found {
		t.Fatalf("negated literal lost: %v", c)
	}
}

func TestParseEquality(t *testing.T) {
	src := "+1 x1 +1 x2 = 1 ;"
	p, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Constraints) != 2 {
		t.Fatalf("EQ should yield 2 normalized constraints, got %d", len(p.Constraints))
	}
	for mask := 0; mask < 4; mask++ {
		values := []bool{mask&1 != 0, mask&2 != 0}
		want := mask == 1 || mask == 2
		if got := p.Feasible(values); got != want {
			t.Fatalf("mask %d: %v want %v", mask, got, want)
		}
	}
}

func TestParseLessEqual(t *testing.T) {
	src := "+1 x1 +1 x2 +1 x3 <= 1 ;"
	p, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	for mask := 0; mask < 8; mask++ {
		values := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		cnt := 0
		for _, b := range values {
			if b {
				cnt++
			}
		}
		if got := p.Feasible(values); got != (cnt <= 1) {
			t.Fatalf("mask %d: %v", mask, got)
		}
	}
}

func TestParseNegativeObjectiveCoef(t *testing.T) {
	// min -2 x1 + 3 x2: optimum picks x1=1, x2=0 ⇒ value −2.
	src := "min: -2 x1 +3 x2 ;\n+1 x1 +1 x2 >= 1 ;"
	p, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	r := pb.BruteForce(p)
	if !r.Feasible || r.Optimum != -2 {
		t.Fatalf("optimum=%d want -2 (%+v)", r.Optimum, r)
	}
}

func TestParseNegatedObjectiveLiteral(t *testing.T) {
	// min 2 ~x1 ⇒ offset 2, cost −2 on x1 ⇒ net encoding with optimum 0 at x1=1.
	src := "min: +2 ~x1 ;\n+1 x1 +1 x2 >= 1 ;"
	p, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	r := pb.BruteForce(p)
	if !r.Feasible || r.Optimum != 0 {
		t.Fatalf("optimum=%d want 0", r.Optimum)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"max: +1 x1 ;",               // max unsupported
		"min: +1 x1 >= 1 ;",          // relop in objective
		"+1 x1 +1 x2 ;",              // constraint without relop
		"+1 x1 >= one ;",             // bad rhs
		"+1 x1 +2 >= 1 ;",            // coefficient without literal
		"min: +1 x1 ;\nmin: +1 x1 ;", // duplicate objective
		"frob x1 >= 1 ;",             // bad coefficient token
		"+1 x1 >= 1 2 ;",             // multi-token rhs
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestParseSemicolonHandling(t *testing.T) {
	// Semicolon glued to last token, and two statements on one line.
	src := "+1 x1 >= 1; +1 x2 >= 1 ;"
	p, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Constraints) != 2 {
		t.Fatalf("constraints=%d want 2", len(p.Constraints))
	}
}

func TestWriteRoundTrip(t *testing.T) {
	src := `min: +3 x1 +1 x2 +4 x3 ;
+2 x1 +1 ~x2 +1 x3 >= 2 ;
+1 x1 +1 x2 +1 x3 <= 2 ;
+1 x2 +1 x3 >= 1 ;
`
	p1, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	out := WriteString(p1)
	p2, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, out)
	}
	r1, r2 := pb.BruteForce(p1), pb.BruteForce(p2)
	if r1.Feasible != r2.Feasible || r1.Optimum+p1.CostOffset-p1.CostOffset != r2.Optimum+p1.CostOffset-p2.CostOffset {
		t.Fatalf("round trip changed semantics: %+v vs %+v", r1, r2)
	}
}

// Property-style: random problems survive a write/parse round trip with the
// same optimum.
func TestRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(5)
		p := pb.NewProblem(n)
		for v := 0; v < n; v++ {
			p.SetCost(pb.Var(v), int64(rng.Intn(6)))
		}
		m := 1 + rng.Intn(6)
		for i := 0; i < m; i++ {
			nt := 1 + rng.Intn(n)
			terms := make([]pb.Term, nt)
			for k := range terms {
				terms[k] = pb.Term{
					Coef: int64(1 + rng.Intn(4)),
					Lit:  pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0),
				}
			}
			cmp := pb.Cmp(rng.Intn(3))
			rhs := int64(rng.Intn(7))
			if err := p.AddConstraint(terms, cmp, rhs); err != nil {
				t.Fatal(err)
			}
		}
		out := WriteString(p)
		q, err := ParseString(out)
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", iter, err, out)
		}
		rp, rq := pb.BruteForce(p), pb.BruteForce(q)
		if rp.Feasible != rq.Feasible {
			t.Fatalf("iter %d: feasibility changed (%v vs %v)\n%s", iter, rp.Feasible, rq.Feasible, out)
		}
		if rp.Feasible && rp.Optimum-p.CostOffset != rq.Optimum-q.CostOffset {
			t.Fatalf("iter %d: optimum changed (%d vs %d)\n%s", iter, rp.Optimum, rq.Optimum, out)
		}
	}
}

func TestWriteNoObjective(t *testing.T) {
	p := pb.NewProblem(2)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	out := WriteString(p)
	if strings.Contains(out, "min:") {
		t.Fatalf("pure satisfaction instance should have no objective line:\n%s", out)
	}
}

func TestVariableNamesPreserved(t *testing.T) {
	src := "min: +1 a +1 b ;\n+1 a +1 b >= 1 ;"
	p, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	names := SortedVarNames(p)
	if names[0] != "a" || names[1] != "b" {
		t.Fatalf("names=%v", names)
	}
	out := WriteString(p)
	if !strings.Contains(out, " a") || !strings.Contains(out, " b") {
		t.Fatalf("names lost:\n%s", out)
	}
}
