package opb

import (
	"strings"
	"testing"

	"repro/internal/pb"
)

// FuzzParse exercises the OPB parser with hostile input: it must never
// panic, and whenever it accepts input, the resulting problem must pass
// validation and survive a write/parse round trip with unchanged
// feasibility. (Run with `go test -fuzz=FuzzParse ./internal/opb` for a
// live fuzzing session; the seed corpus runs in ordinary `go test`.)
func FuzzParse(f *testing.F) {
	seeds := []string{
		"min: +1 x1 ;\n+1 x1 >= 1 ;",
		"min: -2 x1 +3 x2 ;\n+1 x1 +1 x2 >= 1 ;",
		"* comment\n+2 ~x1 +3 x2 = 2 ;",
		"+1 x1 +1 x2 <= 1 ;",
		"min:",
		";;;",
		"+1 x1 >= ;",
		"min: +1 x1 ;\nmin: +1 x1 ;",
		"+9223372036854775807 x1 >= 1 ;",
		"+1 x1 +1 x1 +1 ~x1 >= 1 ;",
		"min: +0 x1 ;\n+0 x1 >= 0 ;",
		strings.Repeat("+1 x1 ", 100) + ">= 3 ;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := ParseString(input)
		if err != nil {
			return // rejected: fine
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted problem fails validation: %v\ninput: %q", err, input)
		}
		if p.NumVars > 18 {
			return // keep the brute-force check cheap
		}
		out := WriteString(p)
		q, err := ParseString(out)
		if err != nil {
			t.Fatalf("round trip failed: %v\nwrote: %q", err, out)
		}
		r1, r2 := pb.BruteForce(p), pb.BruteForce(q)
		if r1.Feasible != r2.Feasible {
			t.Fatalf("round trip changed feasibility\ninput: %q", input)
		}
		if r1.Feasible && r1.Optimum-p.CostOffset != r2.Optimum-q.CostOffset {
			t.Fatalf("round trip changed optimum\ninput: %q", input)
		}
	})
}
