package opb

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/pb"
)

// Fuzzer-sized coefficients must surface pb.ErrOverflow from Parse instead
// of wrapping int64 (a wrapped sum can turn an UNSAT row into a trivially
// satisfied one, or corrupt the optimum).
func TestParseOverflow(t *testing.T) {
	const huge = "9223372036854775807"
	cases := []struct {
		name, in string
	}{
		{"constraint dup literal", "+" + huge + " x1 +" + huge + " x1 >= 1 ;"},
		{"constraint coef sum", "+" + huge + " x1 +" + huge + " x2 >= " + huge + " ;"},
		{"le negation min", "-9223372036854775808 x1 <= 0 ;"},
		{"objective sum", "min: +" + huge + " x1 +" + huge + " x2 ;\n+1 x1 >= 1 ;"},
		{"objective dup", "min: +" + huge + " x1 +" + huge + " x1 ;\n+1 x1 >= 1 ;"},
		{"objective neg dup", "min: -" + huge + " x1 -" + huge + " x1 ;\n+1 x1 >= 1 ;"},
	}
	for _, c := range cases {
		if _, err := ParseString(c.in); !errors.Is(err, pb.ErrOverflow) {
			t.Errorf("%s: err=%v, want pb.ErrOverflow", c.name, err)
		}
	}
	// An objective whose worst case reaches the engine's sentinel range is
	// rejected too — even though the int64 arithmetic itself never wraps.
	// (Differential-fuzzer finding: such instances used to be mis-solved as
	// UNSAT; see pb.MaxObjective and testdata/fuzz-corpus/seed-*.opb.)
	overMax := fmt.Sprintf("min: +%d x1 ;\n+1 x1 >= 1 ;", pb.MaxObjective+1)
	if _, err := ParseString(overMax); !errors.Is(err, pb.ErrOverflow) {
		t.Errorf("objective above MaxObjective: err=%v, want pb.ErrOverflow", err)
	}
	// Large-but-safe coefficients still parse: a cost at exactly the
	// headroom limit, and a huge *constraint* coefficient (clipped to its
	// degree during normalization, so no headroom concern).
	atMax := fmt.Sprintf("min: +%d x1 ;\n+4611686018427387902 x1 >= 1 ;", pb.MaxObjective)
	p, err := ParseString(atMax)
	if err != nil {
		t.Fatalf("large-but-safe: %v", err)
	}
	if p.NumVars != 1 {
		t.Fatalf("NumVars=%d", p.NumVars)
	}
}
