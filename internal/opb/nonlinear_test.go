package opb

import (
	"math/rand"
	"testing"

	"repro/internal/pb"
)

// evalNonlinear evaluates Σ coef·Π lits ≥/=/≤ rhs directly.
type nlTerm struct {
	coef int64
	lits []string // "~a" for negated
}

func evalNL(terms []nlTerm, vals map[string]bool) int64 {
	var s int64
	for _, t := range terms {
		prod := true
		for _, l := range t.lits {
			name, want := l, true
			if name[0] == '~' {
				name, want = name[1:], false
			}
			if vals[name] != want {
				prod = false
				break
			}
		}
		if prod {
			s += t.coef
		}
	}
	return s
}

func TestNonlinearProductConstraint(t *testing.T) {
	// 2 x1 x2 + 1 x3 >= 2 ⇔ (x1 ∧ x2) must hold unless... x3 alone gives 1 < 2,
	// so x1∧x2 required.
	p, err := ParseString("+2 x1 x2 +1 x3 >= 2 ;")
	if err != nil {
		t.Fatal(err)
	}
	r := pb.BruteForce(p)
	if !r.Feasible {
		t.Fatal("should be feasible")
	}
	// Check semantics: project models onto (x1,x2,x3). Every model must
	// satisfy 2(x1∧x2)+x3 ≥ 2, and all 0/1 combos satisfying it must extend
	// to a model.
	okCombos := map[[3]bool]bool{}
	for mask := 0; mask < 8; mask++ {
		a, b, c := mask&1 != 0, mask&2 != 0, mask&4 != 0
		v := int64(0)
		if a && b {
			v += 2
		}
		if c {
			v++
		}
		okCombos[[3]bool{a, b, c}] = v >= 2
	}
	if p.NumVars < 4 {
		t.Fatalf("expected auxiliary product variable, vars=%d", p.NumVars)
	}
	// The auxiliary product variable is created mid-statement, so resolve
	// the named variables by their recorded names.
	idx := func(name string) int {
		for v, n := range p.Names {
			if n == name {
				return v
			}
		}
		t.Fatalf("variable %s not found in %v", name, p.Names)
		return -1
	}
	i1, i2, i3 := idx("x1"), idx("x2"), idx("x3")
	for mask := 0; mask < 1<<p.NumVars; mask++ {
		vals := make([]bool, p.NumVars)
		for v := 0; v < p.NumVars; v++ {
			vals[v] = mask&(1<<v) != 0
		}
		if p.Feasible(vals) {
			if !okCombos[[3]bool{vals[i1], vals[i2], vals[i3]}] {
				t.Fatalf("model violates nonlinear semantics: x1=%v x2=%v x3=%v", vals[i1], vals[i2], vals[i3])
			}
		}
	}
	for combo, ok := range okCombos {
		if !ok {
			continue
		}
		found := false
		for mask := 0; mask < 1<<p.NumVars; mask++ {
			vals := make([]bool, p.NumVars)
			for v := 0; v < p.NumVars; v++ {
				vals[v] = mask&(1<<v) != 0
			}
			if vals[i1] == combo[0] && vals[i2] == combo[1] && vals[i3] == combo[2] && p.Feasible(vals) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("combo %v satisfies the nonlinear constraint but has no extension", combo)
		}
	}
}

func TestNonlinearObjective(t *testing.T) {
	// min 5 x1 x2 + 1 x1 s.t. x1 >= 1: optimum picks x1=1, x2=0 ⇒ cost 1.
	p, err := ParseString("min: +5 x1 x2 +1 x1 ;\n+1 x1 >= 1 ;")
	if err != nil {
		t.Fatal(err)
	}
	r := pb.BruteForce(p)
	if !r.Feasible || r.Optimum != 1 {
		t.Fatalf("optimum=%d want 1", r.Optimum)
	}
}

func TestNonlinearSharedProduct(t *testing.T) {
	// The same product in two statements must share one auxiliary variable.
	p, err := ParseString("+1 a b +1 c >= 1 ;\n+2 b a >= 0 ;\nmin: +1 a b ;")
	if err != nil {
		t.Fatal(err)
	}
	// Variables: a, b, c + exactly one product var.
	if p.NumVars != 4 {
		t.Fatalf("vars=%d want 4 (product shared)", p.NumVars)
	}
}

func TestNonlinearNegatedFactors(t *testing.T) {
	// ~x1 x2 is the conjunction ¬x1 ∧ x2.
	p, err := ParseString("+1 ~x1 x2 >= 1 ;")
	if err != nil {
		t.Fatal(err)
	}
	for mask := 0; mask < 1<<p.NumVars; mask++ {
		vals := make([]bool, p.NumVars)
		for v := 0; v < p.NumVars; v++ {
			vals[v] = mask&(1<<v) != 0
		}
		if p.Feasible(vals) && !(!vals[0] && vals[1]) {
			t.Fatalf("model %v violates ¬x1∧x2", vals)
		}
	}
	if !pb.BruteForce(p).Feasible {
		t.Fatal("should be feasible (x1=0, x2=1)")
	}
}

func TestNonlinearContradictoryProductRejected(t *testing.T) {
	if _, err := ParseString("+1 x1 ~x1 >= 1 ;"); err == nil {
		t.Fatal("expected error for x·¬x product")
	}
}

func TestNonlinearDuplicateFactorCollapses(t *testing.T) {
	// x1 x1 = x1: no auxiliary variable needed.
	p, err := ParseString("+1 x1 x1 >= 1 ;")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumVars != 1 {
		t.Fatalf("vars=%d want 1", p.NumVars)
	}
}

// Random nonlinear instances: the linearized problem's optimum must equal a
// direct evaluation over the original variables.
func TestNonlinearRandomAgainstDirectEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	names := []string{"a", "b", "c", "d"}
	for iter := 0; iter < 150; iter++ {
		var sb []byte
		var constraints [][]nlTerm
		var rhss []int64
		nc := 1 + rng.Intn(3)
		for ci := 0; ci < nc; ci++ {
			nt := 1 + rng.Intn(3)
			var terms []nlTerm
			line := ""
			for ti := 0; ti < nt; ti++ {
				coef := int64(1 + rng.Intn(3))
				nl := 1 + rng.Intn(2)
				var lits []string
				seen := map[string]bool{}
				for li := 0; li < nl; li++ {
					nm := names[rng.Intn(len(names))]
					if seen[nm] {
						continue
					}
					seen[nm] = true
					if rng.Intn(3) == 0 {
						nm = "~" + nm
					}
					lits = append(lits, nm)
				}
				terms = append(terms, nlTerm{coef, lits})
				line += "+" + itoa(coef) + " "
				for _, l := range lits {
					line += l + " "
				}
			}
			rhs := int64(rng.Intn(4))
			line += ">= " + itoa(rhs) + " ;\n"
			sb = append(sb, line...)
			constraints = append(constraints, terms)
			rhss = append(rhss, rhs)
		}
		p, err := ParseString(string(sb))
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", iter, err, sb)
		}
		got := pb.BruteForce(p).Feasible
		// Direct evaluation over the 4 named variables.
		want := false
		for mask := 0; mask < 16 && !want; mask++ {
			vals := map[string]bool{}
			for i, nm := range names {
				vals[nm] = mask&(1<<i) != 0
			}
			ok := true
			for ci, terms := range constraints {
				if evalNL(terms, vals) < rhss[ci] {
					ok = false
					break
				}
			}
			want = want || ok
		}
		if got != want {
			t.Fatalf("iter %d: linearized feasible=%v direct=%v\n%s", iter, got, want, sb)
		}
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}
