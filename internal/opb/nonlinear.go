package opb

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pb"
)

// productTable linearizes nonlinear OPB terms: a product l1·l2·…·lk of
// literals is replaced by a fresh auxiliary variable z constrained to equal
// the conjunction:
//
//	z → l_i               (¬z ∨ l_i, one clause per factor)
//	l_1 ∧ … ∧ l_k → z     (z ∨ ¬l_1 ∨ … ∨ ¬l_k)
//
// Identical products (up to ordering) share one auxiliary variable. The
// equivalence (rather than a one-sided implication) keeps the substitution
// valid in every context: objectives, ≥/≤/= constraints, either sign.
type productTable struct {
	prob    *pb.Problem
	byKey   map[string]pb.Var
	pending []productDef
}

type productDef struct {
	z    pb.Var
	lits []pb.Lit
}

func newProductTable(p *pb.Problem) *productTable {
	return &productTable{prob: p, byKey: map[string]pb.Var{}}
}

// literal returns the literal representing the product of lits: the literal
// itself for a single factor, or the shared auxiliary variable otherwise.
// The defining clauses are deferred (the problem may still be growing
// variables) and installed by flushDefinitions.
func (pt *productTable) literal(lits []pb.Lit) (pb.Lit, error) {
	if len(lits) == 1 {
		return lits[0], nil
	}
	// Canonicalize: sort, deduplicate; a product containing both x and ¬x
	// is constant false, which has no literal representation — reject with
	// a clear error (a fresh always-false variable would silently grow the
	// problem; such inputs are malformed in practice).
	sorted := append([]pb.Lit(nil), lits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	uniq := sorted[:0]
	for i, l := range sorted {
		if i > 0 && l == sorted[i-1] {
			continue
		}
		if i > 0 && l.Var() == sorted[i-1].Var() {
			return pb.NoLit, fmt.Errorf("opb: product contains both polarities of x%d", l.Var())
		}
		uniq = append(uniq, l)
	}
	if len(uniq) == 1 {
		return uniq[0], nil
	}
	var sb strings.Builder
	for _, l := range uniq {
		fmt.Fprintf(&sb, "%d.", int32(l))
	}
	key := sb.String()
	if z, ok := pt.byKey[key]; ok {
		return pb.PosLit(z), nil
	}
	z := pt.prob.AddVar(0)
	if int(z) < len(pt.prob.Names) {
		pt.prob.Names[z] = fmt.Sprintf("_p%d", z)
	} else {
		for len(pt.prob.Names) < int(z) {
			pt.prob.Names = append(pt.prob.Names, "")
		}
		pt.prob.Names = append(pt.prob.Names, fmt.Sprintf("_p%d", z))
	}
	pt.byKey[key] = z
	pt.pending = append(pt.pending, productDef{z: z, lits: append([]pb.Lit(nil), uniq...)})
	return pb.PosLit(z), nil
}

// flushDefinitions installs the defining clauses of every auxiliary
// product variable.
func (pt *productTable) flushDefinitions() error {
	for _, def := range pt.pending {
		// z → l_i for every factor.
		for _, l := range def.lits {
			if err := pt.prob.AddClause(pb.NegLit(def.z), l); err != nil {
				return err
			}
		}
		// Conjunction → z.
		clause := make([]pb.Lit, 0, len(def.lits)+1)
		clause = append(clause, pb.PosLit(def.z))
		for _, l := range def.lits {
			clause = append(clause, l.Neg())
		}
		if err := pt.prob.AddClause(clause...); err != nil {
			return err
		}
	}
	pt.pending = nil
	return nil
}
