package engine

import (
	"math/rand"
	"testing"

	"repro/internal/pb"
)

func TestReduceDBRemovesHalf(t *testing.T) {
	p := pb.NewProblem(10)
	e := New(p)
	for i := 0; i < 20; i++ {
		terms := []pb.Term{
			{Coef: 1, Lit: pb.PosLit(pb.Var(i % 10))},
			{Coef: 1, Lit: pb.NegLit(pb.Var((i + 3) % 10))},
		}
		e.AddCons(terms, 1, true)
	}
	prot := e.AddCons([]pb.Term{{Coef: 1, Lit: pb.PosLit(0)}}, 1, true)
	e.Protect(prot)
	removed := e.ReduceDB()
	if removed != 10 {
		t.Fatalf("removed=%d want 10 (half of 20 unprotected)", removed)
	}
	if e.Cons(prot).Removed() {
		t.Fatal("protected constraint removed")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReduceDBRefusesAboveRoot(t *testing.T) {
	p := pb.NewProblem(2)
	e := New(p)
	e.AddCons([]pb.Term{{Coef: 1, Lit: pb.PosLit(0)}, {Coef: 1, Lit: pb.PosLit(1)}}, 1, true)
	e.Decide(pb.PosLit(0))
	if n := e.ReduceDB(); n != 0 {
		t.Fatalf("ReduceDB above root removed %d", n)
	}
}

func TestReduceDBKeepsRootReasons(t *testing.T) {
	p := pb.NewProblem(3)
	_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	e := New(p)
	// Learned unit-ish clause that forces x2 at the root.
	idx := e.AddCons([]pb.Term{{Coef: 1, Lit: pb.PosLit(2)}}, 1, true)
	if e.SeedUnits() < 0 || e.Propagate() >= 0 {
		t.Fatal("setup failed")
	}
	if e.Value(2) != True {
		t.Fatal("x2 not forced")
	}
	// Pad with removable learned clauses.
	for i := 0; i < 10; i++ {
		e.AddCons([]pb.Term{{Coef: 1, Lit: pb.PosLit(0)}, {Coef: 1, Lit: pb.NegLit(1)}}, 1, true)
	}
	e.ReduceDB()
	if e.Cons(idx).Removed() {
		t.Fatal("root reason was garbage-collected")
	}
}

// Solving with aggressive DB reduction must stay exact: run a CDCL loop
// that reduces at every restart point and compare against brute force.
func TestSolveWithReduceDBStaysExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for iter := 0; iter < 100; iter++ {
		n := 6 + rng.Intn(4)
		p := pb.NewProblem(n)
		m := int(4.3 * float64(n))
		for i := 0; i < m; i++ {
			lits := make([]pb.Lit, 3)
			for k := range lits {
				lits[k] = pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0)
			}
			_ = p.AddClause(lits...)
		}
		want := pb.BruteForce(p)
		e := New(p)
		if e.SeedUnits() < 0 {
			if want.Feasible {
				t.Fatalf("iter %d: seed claims unsat on feasible instance", iter)
			}
			continue
		}
		sat := false
		done := false
		for conflicts := 0; conflicts < 50000; {
			confl := e.Propagate()
			if confl >= 0 {
				conflicts++
				res := e.AnalyzeConstraint(confl)
				if res.Unsat {
					done = true
					break
				}
				if e.LearnAndBackjump(res) < 0 {
					done = true
					break
				}
				if conflicts%64 == 0 {
					e.BacktrackTo(0)
					e.ReduceDB()
				}
				continue
			}
			if e.NumUnsatisfied() == 0 {
				sat, done = true, true
				break
			}
			v := e.PickBranchVar()
			if v < 0 {
				break
			}
			e.Decide(pb.MkLit(v, e.PreferredPhase(v) == False))
		}
		if !done {
			t.Fatalf("iter %d: budget exhausted", iter)
		}
		if sat != want.Feasible {
			t.Fatalf("iter %d: sat=%v brute=%v", iter, sat, want.Feasible)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}
