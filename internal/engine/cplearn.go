// Cutting-plane conflict analysis in the style of Galena (Chai & Kuehlmann,
// "A Fast Pseudo-Boolean Constraint Solver", DAC 2003 — the paper's
// reference [4]): instead of (or in addition to) resolving a conflict into a
// clause, derive a learned *pseudo-Boolean* constraint by cancelling
// addition of the conflicting constraint with the reason constraints along
// the trail, keeping the intermediate conflicting throughout.
//
// Each resolution step follows the division-based recipe that keeps the
// invariant "slack < 0" (the derived constraint still falsifies the current
// assignment):
//
//  1. weaken the reason on every non-falsified literal except the
//     propagated one (sound: dropping a·l and lowering the degree by a);
//  2. divide the weakened reason by the propagated literal's coefficient,
//     rounding up (sound: Chvátal-Gomory division) — the propagated literal
//     now has coefficient 1 and the reason has slack ≤ 0;
//  3. add λ× the rounded reason to the current constraint, where λ is the
//     coefficient of the complementary literal, cancelling the pivot
//     variable; by slack subadditivity the sum keeps slack < 0;
//  4. saturate (clip coefficients at the degree).
//
// The derived constraint is generally stronger than the 1UIP clause (it can
// cut off exponentially more assignments) but is not guaranteed to be
// asserting after the backjump, so callers pair it with ordinary clause
// learning: the clause drives the search, the cutting plane adds pruning.
package engine

import (
	"sort"

	"repro/internal/pb"
)

// cpMaxCoef aborts the derivation when coefficients outgrow this bound
// (cancelling addition can blow coefficients up before saturation catches
// them; giving up is always sound — the clause path still learns).
const cpMaxCoef = int64(1) << 48

// cpMaxSize aborts the derivation when the constraint grows too wide to be
// worth propagating.
const cpMaxSize = 512

// cpCons is the mutable intermediate of the derivation.
type cpCons struct {
	coef   map[pb.Lit]int64
	degree int64
}

func newCPCons(c Cons) *cpCons {
	cp := &cpCons{coef: make(map[pb.Lit]int64, len(c.Lits)), degree: c.Degree}
	for i, l := range c.Lits {
		cp.coef[l] = c.Coefs[i]
	}
	return cp
}

// slack returns Σ_{l not false} coef(l) − degree under the current
// assignment.
func (cp *cpCons) slack(e *Engine) int64 {
	s := -cp.degree
	for l, a := range cp.coef {
		if e.LitValue(l) != False {
			s += a
		}
	}
	return s
}

// weakenExcept removes every literal that is not false under the current
// assignment, except keep; the degree drops by the removed coefficients.
func (cp *cpCons) weakenExcept(e *Engine, keep pb.Lit) {
	for l, a := range cp.coef {
		if l == keep {
			continue
		}
		if e.LitValue(l) != False {
			cp.degree -= a
			delete(cp.coef, l)
		}
	}
}

// divideCeil applies Chvátal-Gomory division by d > 0.
func (cp *cpCons) divideCeil(d int64) {
	for l, a := range cp.coef {
		cp.coef[l] = (a + d - 1) / d
	}
	cp.degree = (cp.degree + d - 1) / d
}

// saturate clips every coefficient at the degree.
func (cp *cpCons) saturate() {
	if cp.degree <= 0 {
		return
	}
	for l, a := range cp.coef {
		if a > cp.degree {
			cp.coef[l] = cp.degree
		}
	}
}

// addScaled adds λ·other into cp, cancelling opposite-polarity pairs
// (a·l + b·¬l = min + (a−min)·l + (b−min)·¬l with the degree reduced by
// min). Returns false when coefficients overflow the safety bound.
func (cp *cpCons) addScaled(other *cpCons, lambda int64) bool {
	cp.degree += lambda * other.degree
	for l, a := range other.coef {
		add := lambda * a
		if add <= 0 || add > cpMaxCoef {
			return false
		}
		if b, ok := cp.coef[l.Neg()]; ok {
			// Cancel against the complement.
			m := add
			if b < m {
				m = b
			}
			cp.degree -= m
			if b == m {
				delete(cp.coef, l.Neg())
			} else {
				cp.coef[l.Neg()] = b - m
			}
			add -= m
			if add == 0 {
				continue
			}
		}
		n := cp.coef[l] + add
		if n > cpMaxCoef {
			return false
		}
		cp.coef[l] = n
	}
	return true
}

// falseAtLevel counts literals of cp falsified at exactly the given level.
func (cp *cpCons) falseAtLevel(e *Engine, lvl int) int {
	n := 0
	for l := range cp.coef {
		if e.LitValue(l) == False && e.Level(l.Var()) == lvl {
			n++
		}
	}
	return n
}

// AnalyzeCuttingPlane derives a learned pseudo-Boolean constraint from the
// conflicting constraint consIdx by cancelling addition along the trail,
// stopping when at most one literal of the derived constraint is falsified
// at the current decision level (the generalized-UIP condition). It returns
// nil when the derivation aborts (decision reached with multiple
// current-level literals, coefficient overflow, or width explosion) — which
// is always safe, because callers also learn the 1UIP clause.
//
// The returned terms are normalized: positive saturated coefficients sorted
// in descending order, one term per variable, positive degree.
func (e *Engine) AnalyzeCuttingPlane(consIdx int) ([]pb.Term, int64) {
	curLevel := e.DecisionLevel()
	if curLevel == 0 {
		return nil, 0
	}
	cur := newCPCons(e.Cons(consIdx))
	if cur.slack(e) >= 0 {
		return nil, 0 // not actually conflicting (defensive)
	}

	idx := len(e.trail) - 1
	for cur.falseAtLevel(e, curLevel) > 1 {
		// Find the most recent trail literal whose complement appears in cur.
		var pivot pb.Lit = pb.NoLit
		for ; idx >= 0; idx-- {
			l := e.trail[idx]
			if _, ok := cur.coef[l.Neg()]; ok {
				pivot = l
				break
			}
		}
		if pivot == pb.NoLit {
			return nil, 0 // defensive: malformed state
		}
		if e.Level(pivot.Var()) < curLevel {
			break // all remaining current-level literals resolved
		}
		r := e.reason[pivot.Var()]
		if r == NoReason {
			return nil, 0 // decision reached with several current-level lits
		}
		reason := newCPCons(e.Cons(int(r)))
		ap, ok := reason.coef[pivot]
		if !ok || ap <= 0 {
			return nil, 0 // defensive
		}
		reason.weakenExcept(e, pivot)
		if ap > 1 {
			reason.divideCeil(ap)
		}
		lambda := cur.coef[pivot.Neg()]
		if !cur.addScaled(reason, lambda) {
			return nil, 0
		}
		cur.saturate()
		if len(cur.coef) > cpMaxSize {
			return nil, 0
		}
		if cur.slack(e) >= 0 {
			// The invariant guarantees this cannot happen; abort soundly if
			// numerics or a modelling bug ever violate it.
			return nil, 0
		}
		idx--
	}

	if cur.degree <= 0 || len(cur.coef) == 0 {
		return nil, 0
	}
	terms := make([]pb.Term, 0, len(cur.coef))
	for l, a := range cur.coef {
		if a > 0 {
			terms = append(terms, pb.Term{Coef: a, Lit: l})
		}
	}
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].Coef != terms[j].Coef {
			return terms[i].Coef > terms[j].Coef
		}
		return terms[i].Lit < terms[j].Lit
	})
	return terms, cur.degree
}

// ScheduleCheck queues constraint idx for re-examination on the next
// Propagate call (used after installing a learned constraint that may
// already be propagating or conflicting at the current level).
func (e *Engine) ScheduleCheck(idx int) {
	e.pending = append(e.pending, int32(idx))
}
