package engine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/pb"
)

// importFixture builds an engine whose root assignment is x0=true, x1=false
// (via unit clauses), with x2..x4 unassigned.
func importFixture(t *testing.T) *Engine {
	t.Helper()
	p := pb.NewProblem(5)
	_ = p.AddClause(pb.PosLit(0))
	_ = p.AddClause(pb.NegLit(1))
	e := New(p)
	if e.SeedUnits() < 0 {
		t.Fatal("fixture unexpectedly unsat")
	}
	if confl := e.Propagate(); confl >= 0 {
		t.Fatal("fixture propagation conflict")
	}
	if e.LitValue(pb.PosLit(0)) != True || e.LitValue(pb.NegLit(1)) != True {
		t.Fatal("fixture root assignment wrong")
	}
	return e
}

func TestImportClauseStatuses(t *testing.T) {
	cases := []struct {
		name string
		lits []pb.Lit
		want ImportStatus
	}{
		{"empty input is invalid, not a conflict", nil, ImportInvalid},
		{"out-of-range variable", []pb.Lit{pb.PosLit(99)}, ImportInvalid},
		{"corrupt negative literal", []pb.Lit{pb.Lit(-3)}, ImportInvalid},
		{"root-true literal satisfies", []pb.Lit{pb.PosLit(0), pb.PosLit(2)}, ImportSatisfied},
		{"tautological pair satisfies", []pb.Lit{pb.PosLit(2), pb.NegLit(2)}, ImportSatisfied},
		{"root-false literals drop to a unit", []pb.Lit{pb.PosLit(1), pb.PosLit(2)}, ImportUnit},
		{"all literals root-false conflict", []pb.Lit{pb.PosLit(1), pb.NegLit(0)}, ImportConflict},
		{"two unassigned literals stored", []pb.Lit{pb.PosLit(3), pb.PosLit(4)}, ImportAdded},
		{"duplicate literal normalized away", []pb.Lit{pb.PosLit(3), pb.PosLit(3), pb.PosLit(1)}, ImportUnit},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := importFixture(t)
			if got := e.ImportClause(tc.lits); got != tc.want {
				t.Fatalf("ImportClause(%v) = %v, want %v", tc.lits, got, tc.want)
			}
		})
	}
}

func TestImportUnitAssignsAtRoot(t *testing.T) {
	e := importFixture(t)
	if got := e.ImportClause([]pb.Lit{pb.PosLit(1), pb.PosLit(2)}); got != ImportUnit {
		t.Fatalf("status=%v", got)
	}
	if e.LitValue(pb.PosLit(2)) != True {
		t.Fatal("imported unit not assigned")
	}
	if e.DecisionLevel() != 0 || e.Level(2) != 0 {
		t.Fatal("imported unit not at the root level")
	}
	if e.Stats.Imported != 1 {
		t.Fatalf("Stats.Imported=%d", e.Stats.Imported)
	}
}

func TestImportedClausePropagates(t *testing.T) {
	e := importFixture(t)
	if got := e.ImportClause([]pb.Lit{pb.PosLit(3), pb.PosLit(4)}); got != ImportAdded {
		t.Fatalf("status=%v", got)
	}
	e.Decide(pb.NegLit(3))
	if confl := e.Propagate(); confl >= 0 {
		t.Fatal("unexpected conflict")
	}
	if e.LitValue(pb.PosLit(4)) != True {
		t.Fatal("imported watched clause did not propagate its last literal")
	}
}

func TestImportedClauseConflicts(t *testing.T) {
	e := importFixture(t)
	if got := e.ImportClause([]pb.Lit{pb.PosLit(3), pb.PosLit(4)}); got != ImportAdded {
		t.Fatalf("status=%v", got)
	}
	e.Decide(pb.NegLit(3))
	if confl := e.Propagate(); confl >= 0 {
		t.Fatal("unexpected conflict")
	}
	// x4 was propagated true by the import; the clause must participate in
	// conflict analysis like any learned clause. Force a conflict through it
	// by importing at the root after backtracking — here we simply check the
	// reason wiring by analyzing a manual conflict seed.
	res := e.AnalyzeClause([]pb.Lit{pb.NegLit(4)})
	if res.Unsat {
		t.Fatal("analysis claims unsat")
	}
	if len(res.Learnt) == 0 {
		t.Fatal("no clause learned through the imported reason")
	}
}

func TestImportClausePanicsOffRoot(t *testing.T) {
	e := importFixture(t)
	e.Decide(pb.PosLit(2))
	defer func() {
		if recover() == nil {
			t.Fatal("ImportClause off the root did not panic")
		}
	}()
	e.ImportClause([]pb.Lit{pb.PosLit(3), pb.PosLit(4)})
}

func TestSeedRandomBranching(t *testing.T) {
	p := pb.NewProblem(24)
	for v := 0; v < 24; v++ {
		_ = p.AddClause(pb.PosLit(pb.Var(v)), pb.PosLit(pb.Var((v+1)%24)))
	}
	pick := func(seed int64) []pb.Var {
		e := New(p)
		e.SeedRandom(seed, 1.0) // every decision random
		var got []pb.Var
		for i := 0; i < 8; i++ {
			v := e.PickBranchVar()
			if v < 0 {
				break
			}
			got = append(got, v)
			e.Decide(pb.PosLit(v))
		}
		return got
	}
	a, b := pick(7), pick(7)
	if len(a) == 0 {
		t.Fatal("no decisions made")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
	c := pick(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Log("seeds 7 and 8 produced identical picks (possible but unlikely)")
	}
}

// TestImportClauseInternsLiterals pins the interning guarantee documented on
// ImportClause and internClause: the stored clause must be a copy, never an
// alias of the caller's buffer. Foreign clauses cross goroutines in the
// portfolio, and a publisher is free to reuse its buffer the moment
// ImportClause returns — so several engines import the SAME shared slice
// concurrently, and the main goroutine scrambles that slice while the
// engines are still propagating over the imported clause. A retained alias
// shows up twice: as a data race under -race, and as a wrong implication
// when the clause text silently changes under the propagator.
func TestImportClauseInternsLiterals(t *testing.T) {
	p := pb.NewProblem(6)
	// x2 ∨ ¬x3 ∨ x4 over root-unassigned variables: survives import intact.
	shared := []pb.Lit{pb.PosLit(2), pb.NegLit(3), pb.PosLit(4)}

	const workers = 8
	engines := make([]*Engine, workers)
	errs := make(chan error, 2*workers)
	start := make(chan struct{})
	var imported, done sync.WaitGroup
	imported.Add(workers)
	done.Add(workers)
	for i := range engines {
		engines[i] = New(p)
		go func(e *Engine) {
			defer done.Done()
			<-start
			st := e.ImportClause(shared)
			imported.Done()
			if st != ImportAdded {
				errs <- fmt.Errorf("ImportClause = %v, want added", st)
				return
			}
			// Falsify the first two literals; the imported clause must
			// imply the third — while the source buffer is being scrambled.
			e.Decide(pb.NegLit(2))
			e.Decide(pb.PosLit(3))
			if confl := e.Propagate(); confl >= 0 {
				errs <- fmt.Errorf("unexpected conflict %d propagating imported clause", confl)
				return
			}
			if got := e.LitValue(pb.PosLit(4)); got != True {
				errs <- fmt.Errorf("imported clause did not imply x4 (got %v)", got)
			}
		}(engines[i])
	}
	close(start)
	imported.Wait() // every ImportClause has returned; engines still searching
	for i := range shared {
		shared[i] = pb.NegLit(0) // publisher reuses its buffer
	}
	done.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The scramble must not have reached any engine's store: re-derive the
	// implication from scratch on every engine after the fact.
	for i, e := range engines {
		e.BacktrackTo(0)
		e.Decide(pb.NegLit(2))
		e.Decide(pb.PosLit(3))
		if confl := e.Propagate(); confl >= 0 {
			t.Fatalf("engine %d: conflict re-propagating after source scramble", i)
		}
		if got := e.LitValue(pb.PosLit(4)); got != True {
			t.Fatalf("engine %d: stored clause corrupted by source scramble (x4=%v)", i, got)
		}
	}
}
