// Foreign-clause import for the cooperative portfolio: clauses learned by
// other portfolio members are injected into this engine's store at
// restart/backjump-to-root boundaries. Import happens exclusively at decision
// level 0, which makes every case sound and simple:
//
//   - root-false literals can never become true again, so they are dropped
//     from the clause (logical equivalence under the root assignment);
//   - a root-true literal means the clause is already satisfied forever —
//     nothing to store;
//   - one surviving literal is a unit: assigned at the root with the stored
//     clause as its reason (so conflict analysis and ReduceDB's root-reason
//     protection both see it);
//   - two or more surviving literals (all unassigned at the root) go into the
//     two-watched-literal store, where any two literals are valid watches;
//   - zero surviving literals from a non-empty input mean the clause is
//     conflicting at the root: under the publisher's cost assumptions the
//     remaining search space is empty, which the caller converts into an
//     exhaustion proof (see core's import site and DESIGN.md §9).
//
// Imports are *validated*, not trusted: the exchange crosses goroutines and
// the chaos tests corrupt it deliberately. Structurally invalid clauses
// (out-of-range variables, empty input) are rejected with ImportInvalid, and
// duplicate literals / tautological pairs are normalized away, so a corrupt
// or duplicated import can degrade sharing but never soundness.
package engine

import "repro/internal/pb"

// ImportStatus reports how ImportClause handled a foreign clause.
type ImportStatus int

const (
	// ImportAdded: the clause entered the two-watched-literal store.
	ImportAdded ImportStatus = iota
	// ImportUnit: the clause reduced to a single literal, now assigned at
	// the root with the stored clause as reason.
	ImportUnit
	// ImportSatisfied: the clause is permanently satisfied (a root-true
	// literal or a tautological pair) and was dropped.
	ImportSatisfied
	// ImportConflict: every literal is root-false — the search space below
	// the publisher's cost assumptions is empty (exhaustion; see package
	// comment). Nothing was stored.
	ImportConflict
	// ImportInvalid: the clause is structurally invalid (empty input or an
	// out-of-range variable) and was rejected.
	ImportInvalid
)

func (s ImportStatus) String() string {
	switch s {
	case ImportAdded:
		return "added"
	case ImportUnit:
		return "unit"
	case ImportSatisfied:
		return "satisfied"
	case ImportConflict:
		return "conflict"
	default:
		return "invalid"
	}
}

// ImportClause injects a clause learned by another solver into this engine.
// It must be called at decision level 0 (the importing search owns its loop
// and imports only at restart/backjump-to-root boundaries); calling it deeper
// panics. The input slice is not retained and not mutated.
func (e *Engine) ImportClause(lits []pb.Lit) ImportStatus {
	if e.DecisionLevel() != 0 {
		panic("engine: ImportClause requires decision level 0")
	}
	if len(lits) == 0 {
		return ImportInvalid
	}
	// Validate and simplify against the root assignment. have tracks the
	// polarity already kept per variable (0 = none, +1 pos, -1 neg).
	out := make([]pb.Lit, 0, len(lits))
	var have map[pb.Var]int8
	if len(lits) > 1 {
		have = make(map[pb.Var]int8, len(lits))
	}
	for _, l := range lits {
		if l < 0 || int(l.Var()) >= e.nVars {
			return ImportInvalid
		}
		switch e.LitValue(l) {
		case True:
			return ImportSatisfied // root-true: permanently satisfied
		case False:
			continue // root-false: can never help; drop
		}
		if have != nil {
			sign := int8(1)
			if l.IsNeg() {
				sign = -1
			}
			switch have[l.Var()] {
			case sign:
				continue // duplicate literal
			case -sign:
				return ImportSatisfied // tautological pair
			}
			have[l.Var()] = sign
		}
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		return ImportConflict
	case 1:
		idx := e.AddCons([]pb.Term{{Coef: 1, Lit: out[0]}}, 1, true)
		e.assign(out[0], int32(idx))
		e.Stats.Imported++
		return ImportUnit
	}
	// All surviving literals are unassigned at the root: any two are valid
	// watches. internClause copies the literals into the engine's arena, so
	// the stored clause can never alias the (foreign, cross-goroutine)
	// input buffer — see TestImportClauseInternsLiterals.
	idx := e.internClause(out)
	e.Stats.Imported++
	e.watchBoth(idx)
	return ImportAdded
}
