// Package engine implements the SAT-style search substrate that bsolo builds
// on (§1, §3 of the paper): Boolean constraint propagation generalized to
// pseudo-Boolean constraints, conflict-based clause learning with 1UIP
// analysis, non-chronological backtracking, and VSIDS branching.
//
// The engine deliberately exposes a low-level stepping API (Decide /
// Propagate / Analyze / BacktrackTo) instead of a closed solve loop: the
// branch-and-bound driver in internal/core interleaves lower-bound
// computation, bound-conflict generation and constraint inference between
// propagation fixpoints, which requires owning the search loop.
//
// Propagation is counter-based: every constraint tracks the coefficient sum
// of its non-false literals (watchSum) and of its true literals (trueSum).
// With slack = watchSum − degree,
//
//	slack < 0                        ⇒ the constraint is conflicting,
//	coef(l) > slack, l unassigned    ⇒ l is implied true,
//	trueSum ≥ degree                 ⇒ the constraint is satisfied.
//
// trueSum is maintained eagerly in assign; watchSum is maintained lazily —
// the decrement for a falsified literal is applied when Propagate consumes
// its complement from the trail queue, fused with the conflict/implication
// check so each falsification walks its occurrence lists exactly once.
// Between assign and consumption, watchSum (hence slack) reads transiently
// HIGH: implications and conflicts are delayed, never invented, and every
// counter is exact at propagation fixpoint (propHead == len(trail)).
//
// Storage is struct-of-arrays: constraint metadata lives in a flat header
// slice (consHdr) and the terms of all constraints share two flat arenas —
// one for literals, one for coefficients — addressed by per-constraint
// offset/length. The per-literal occurrence index is a CSR (compressed
// sparse row) built once over the initial problem constraints, plus small
// dynamic per-literal lists for constraints added during search. Occurrence
// entries carry the term's coefficient inline, so the two hottest loops
// (Propagate's fused wave and BacktrackTo's counter restore) touch only the
// occurrence stream and the header — never the arenas. See DESIGN.md §13.
package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/pb"
)

// Value of a variable during search.
type Value int8

const (
	// False assignment.
	False Value = iota
	// True assignment.
	True
	// Unassigned variable.
	Unassigned
)

// NoReason marks decision variables and external assumptions in the reason
// slice.
const NoReason int32 = -1

// Constraint header flags.
const (
	// flagLearned marks learned constraints (clauses, cuts).
	flagLearned uint8 = 1 << iota
	// flagProtected learned constraints (incumbent cuts) survive ReduceDB.
	flagProtected
	// flagRemoved marks a garbage-collected constraint; its arena span is
	// reclaimed by compaction and all engine loops skip it.
	flagRemoved
	// flagWatched marks learned clauses propagated by the two-watched-literal
	// scheme (see watched.go); they have no occurrence entries and no
	// satisfaction counters.
	flagWatched
)

// Per-constraint watcher-notification state, packed one byte per constraint
// in Engine.satState. Keeping it out of consHdr means FlushConsDeltas scans
// a dense byte array (L1-resident even for large stores) instead of
// re-touching one 56-byte header cache line per dirty constraint.
const (
	// stateCur mirrors the constraint's current satisfaction, maintained at
	// transition time (when the header is already hot in cache).
	stateCur uint8 = 1 << iota
	// stateLast is the satisfaction state last reported to the watcher.
	stateLast
	// stateDirty marks the constraint as queued in Engine.dirty.
	stateDirty
)

// consHdr is the per-constraint header of the struct-of-arrays store: the
// terms of constraint i are lits[off:off+n] / coefs[off:off+n].
type consHdr struct {
	off   int32
	n     int32
	flags uint8

	degree   int64
	watchSum int64 // Σ coef over non-false literals
	trueSum  int64 // Σ coef over true literals
	maxCoef  int64

	// activity drives learned-constraint garbage collection: bumped when
	// the constraint participates in conflict analysis, decayed per
	// conflict.
	activity float64
}

func (h *consHdr) learned() bool   { return h.flags&flagLearned != 0 }
func (h *consHdr) removed() bool   { return h.flags&flagRemoved != 0 }
func (h *consHdr) watched() bool   { return h.flags&flagWatched != 0 }
func (h *consHdr) satisfied() bool { return h.trueSum >= h.degree }

// Cons is a read-only view of one stored constraint. Lits and Coefs alias
// the engine's term arenas: the view is transient — valid until the next
// call that grows or compacts the store (AddCons, LearnAndBackjump,
// ImportClause, ReduceDB). Copy what you keep.
type Cons struct {
	Lits    []pb.Lit
	Coefs   []int64
	Degree  int64
	Learned bool

	watchSum int64
	trueSum  int64
	removed  bool
}

// Len returns the number of terms.
func (c Cons) Len() int { return len(c.Lits) }

// Removed reports whether the constraint was garbage-collected.
func (c Cons) Removed() bool { return c.removed }

// Slack returns watchSum − degree under the assignment at view time.
func (c Cons) Slack() int64 { return c.watchSum - c.Degree }

// Satisfied reports whether the constraint is already satisfied by true
// literals alone.
func (c Cons) Satisfied() bool { return c.trueSum >= c.Degree }

// TrueSum returns the coefficient sum of currently-true literals.
func (c Cons) TrueSum() int64 { return c.trueSum }

// occRef is one occurrence-index entry: constraint index plus the term's
// coefficient, inlined so counter updates never chase into the arenas.
// Coefficients are immutable after AddCons, so the copy cannot go stale.
type occRef struct {
	cons int32
	coef int64
}

// Stats counts search events.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Learned      int64
	MaxTrail     int
	// Imported counts foreign clauses installed via ImportClause (units and
	// watched clauses; rejected or dropped imports are not counted).
	Imported int64
	// RandomDecisions counts branch picks made by the seeded RNG (see
	// SeedRandom) instead of VSIDS.
	RandomDecisions int64
}

// Engine is the CDCL search state.
type Engine struct {
	nVars int

	// Struct-of-arrays constraint store (see package comment).
	hdrs  []consHdr
	lits  []pb.Lit
	coefs []int64

	// occCSR/occOff form the immutable CSR occurrence index over the
	// constraints present at New: the constraints containing literal l are
	// occCSR[occOff[l]:occOff[l+1]]. Those constraints are problem
	// constraints and are never removed, so the CSR needs no purging —
	// the hot loops over it skip the removed check entirely.
	occCSR []occRef
	occOff []int32
	// occDyn holds occurrence entries for counter-based constraints added
	// after New (late problem rows, learned PB cuts, imported units); these
	// can be removed by ReduceDB, so entries are validated and purged.
	occDyn [][]occRef

	value    []Value
	level    []int32
	reason   []int32 // constraint index, or NoReason
	trailPos []int32
	trail    []pb.Lit
	trailLim []int
	propHead int

	// numUnsatisfied counts problem (non-learned) constraints that are not
	// yet satisfied by true literals.
	numUnsatisfied int

	activity []float64
	varInc   float64
	consInc  float64
	heap     *varHeap
	phase    []Value

	// seen is scratch space for Analyze.
	seen []bool

	// pending holds constraint indices whose degree was tightened in place
	// (UpdateDegree); Propagate re-examines them before draining the trail,
	// since counter-based propagation only fires on literal falsification.
	pending []int32

	// watchList[l] lists the watched learned clauses currently watching
	// literal l (see watched.go).
	watchList [][]int32

	// consWatcher, when non-nil, observes satisfaction transitions of
	// problem constraints (see notify.go). Registered via SetConsWatcher.
	// Transitions are coalesced per propagation wave: assign/backtrack only
	// mark constraints dirty, and FlushConsDeltas delivers the net
	// transitions in one ConsWave call.
	consWatcher ConsWatcher
	dirty       []int32
	satState    []uint8 // state* bits per constraint (see const block)
	satBuf      []int32
	unsatBuf    []int32

	// numDyn counts constraints added after New (the only ones with occDyn
	// entries). While zero — the common case until PB cuts are learned or
	// rows imported — the hot loops skip the occDyn indexing entirely.
	numDyn int

	// rng, when non-nil, injects seeded random branching: with probability
	// randFreq a decision picks a random unassigned variable instead of the
	// VSIDS maximum (portfolio diversification). Deterministic per seed —
	// the only randomness in the engine, and always explicit.
	rng      *rand.Rand
	randFreq float64

	// Interrupt, when non-nil, is polled every ~1k propagations inside
	// Propagate; returning true stops the fixpoint early and Propagate
	// returns -1 (no conflict). The caller is expected to notice that its
	// budget expired and abort the search — the engine state stays
	// consistent (merely not yet at fixpoint; a later Propagate resumes).
	// This is how deadline/cancellation checks reach propagation-heavy
	// nodes that would otherwise overshoot the time limit by seconds.
	Interrupt func() bool

	Stats Stats
}

// New builds an engine for the given normalized problem. Constraints that
// are unsatisfiable on their own (degree exceeding coefficient sum) make the
// root level conflicting; detect that with an initial Propagate.
func New(p *pb.Problem) *Engine {
	e := &Engine{
		nVars:     p.NumVars,
		value:     make([]Value, p.NumVars),
		level:     make([]int32, p.NumVars),
		reason:    make([]int32, p.NumVars),
		trailPos:  make([]int32, p.NumVars),
		activity:  make([]float64, p.NumVars),
		phase:     make([]Value, p.NumVars),
		seen:      make([]bool, p.NumVars),
		occDyn:    make([][]occRef, 2*p.NumVars),
		watchList: make([][]int32, 2*p.NumVars),
		varInc:    1,
		consInc:   1,
	}
	for v := range e.value {
		e.value[v] = Unassigned
		e.reason[v] = NoReason
	}
	e.heap = newVarHeap(e.activity)
	for v := 0; v < p.NumVars; v++ {
		e.heap.push(pb.Var(v))
	}

	// Build the SoA store and the CSR occurrence index in two passes:
	// count occurrences per literal, prefix-sum into row offsets, then fill
	// arena spans and CSR cells. Everything is unassigned at New, so the
	// counters are watchSum = Σcoef, trueSum = 0.
	total := 0
	for _, c := range p.Constraints {
		total += len(c.Terms)
	}
	e.lits = make([]pb.Lit, 0, total)
	e.coefs = make([]int64, 0, total)
	e.hdrs = make([]consHdr, 0, len(p.Constraints))
	e.occOff = make([]int32, 2*p.NumVars+1)
	for _, c := range p.Constraints {
		for _, t := range c.Terms {
			e.occOff[t.Lit+1]++
		}
	}
	for l := 1; l < len(e.occOff); l++ {
		e.occOff[l] += e.occOff[l-1]
	}
	e.occCSR = make([]occRef, total)
	cursor := make([]int32, 2*p.NumVars)
	copy(cursor, e.occOff[:2*p.NumVars])
	for ci, c := range p.Constraints {
		h := consHdr{off: int32(len(e.lits)), n: int32(len(c.Terms)), degree: c.Degree}
		for _, t := range c.Terms {
			e.lits = append(e.lits, t.Lit)
			e.coefs = append(e.coefs, t.Coef)
			h.watchSum += t.Coef
			if t.Coef > h.maxCoef {
				h.maxCoef = t.Coef
			}
			e.occCSR[cursor[t.Lit]] = occRef{int32(ci), t.Coef}
			cursor[t.Lit]++
		}
		if !h.satisfied() {
			e.numUnsatisfied++
		}
		e.hdrs = append(e.hdrs, h)
	}
	e.satState = make([]uint8, len(e.hdrs))
	return e
}

// csr returns the immutable CSR occurrence row of literal l.
func (e *Engine) csr(l pb.Lit) []occRef {
	return e.occCSR[e.occOff[l]:e.occOff[l+1]]
}

// NumVars returns the variable count.
func (e *Engine) NumVars() int { return e.nVars }

// NumCons returns the number of stored constraints (problem + learned).
func (e *Engine) NumCons() int { return len(e.hdrs) }

// Cons returns a read-only view of the i-th stored constraint. The view's
// term slices alias the engine arenas and are invalidated by the next store
// mutation (AddCons / LearnAndBackjump / ImportClause / ReduceDB); counters
// (TrueSum, Slack, Satisfied) are copied at call time.
func (e *Engine) Cons(i int) Cons {
	h := &e.hdrs[i]
	end := h.off + h.n
	return Cons{
		Lits:     e.lits[h.off:end:end],
		Coefs:    e.coefs[h.off:end:end],
		Degree:   h.degree,
		Learned:  h.learned(),
		watchSum: h.watchSum,
		trueSum:  h.trueSum,
		removed:  h.removed(),
	}
}

// Value returns the current assignment of v.
func (e *Engine) Value(v pb.Var) Value { return e.value[v] }

// LitValue returns the truth value of literal l under the current partial
// assignment.
func (e *Engine) LitValue(l pb.Lit) Value {
	v := e.value[l.Var()]
	if v == Unassigned {
		return Unassigned
	}
	if l.IsNeg() {
		return 1 - v
	}
	return v
}

// Level returns the decision level at which v was assigned (meaningful only
// when assigned).
func (e *Engine) Level(v pb.Var) int { return int(e.level[v]) }

// TrailPos returns the trail position of v's assignment.
func (e *Engine) TrailPos(v pb.Var) int { return int(e.trailPos[v]) }

// DecisionLevel returns the current decision level (0 = root).
func (e *Engine) DecisionLevel() int { return len(e.trailLim) }

// TrailSize returns the number of assigned variables.
func (e *Engine) TrailSize() int { return len(e.trail) }

// TrailLit returns the i-th literal on the trail.
func (e *Engine) TrailLit(i int) pb.Lit { return e.trail[i] }

// DecisionLit returns the decision literal of level lvl (1-based; lvl must
// be in [1, DecisionLevel()]).
func (e *Engine) DecisionLit(lvl int) pb.Lit { return e.trail[e.trailLim[lvl-1]] }

// NumUnsatisfied returns the count of problem constraints not yet satisfied
// by true literals.
func (e *Engine) NumUnsatisfied() int { return e.numUnsatisfied }

// appendHdr appends a header and grows the notification-state table in
// step.
func (e *Engine) appendHdr(h consHdr) int32 {
	idx := int32(len(e.hdrs))
	e.hdrs = append(e.hdrs, h)
	e.satState = append(e.satState, 0)
	return idx
}

// AddCons appends the normalized constraint Σ terms ≥ degree to the store,
// initializing its propagation counters from the current assignment. It
// returns the constraint index. The caller must ensure terms are normalized
// (positive clipped coefficients sorted by descending coefficient, one term
// per variable) — constraints from pb.Normalize or derived clauses satisfy
// this. A clause of literals can be added with coefficient 1 each and
// degree 1. The terms are interned into the engine arenas; the input slice
// is neither retained nor mutated.
func (e *Engine) AddCons(terms []pb.Term, degree int64, learned bool) int {
	h := consHdr{off: int32(len(e.lits)), n: int32(len(terms)), degree: degree}
	if learned {
		h.flags |= flagLearned
		e.Stats.Learned++
	}
	idx := int32(len(e.hdrs))
	for _, t := range terms {
		e.lits = append(e.lits, t.Lit)
		e.coefs = append(e.coefs, t.Coef)
		if t.Coef > h.maxCoef {
			h.maxCoef = t.Coef
		}
		// occDyn[l] lists exactly the constraints whose stored term literal
		// is l: when l turns true those constraints gain trueSum, and when l
		// turns false (its complement assigned) they lose watchSum.
		e.occDyn[t.Lit] = append(e.occDyn[t.Lit], occRef{idx, t.Coef})
		switch e.LitValue(t.Lit) {
		case Unassigned:
			h.watchSum += t.Coef
		case True:
			h.watchSum += t.Coef
			h.trueSum += t.Coef
		case False:
			// watchSum decrements are applied when Propagate consumes the
			// falsifying trail literal. If that literal is still queued
			// (trail position >= propHead), the decrement is yet to come:
			// count the coefficient now so the books balance when it does.
			if int(e.trailPos[t.Lit.Var()]) >= e.propHead {
				h.watchSum += t.Coef
			}
		}
	}
	sat := h.satisfied()
	if !learned {
		if !sat {
			e.numUnsatisfied++
		}
	}
	e.numDyn++
	e.appendHdr(h)
	if !learned && e.consWatcher != nil {
		if sat {
			e.satState[idx] = stateCur | stateLast
		}
		e.consWatcher.ConsAdded(int(idx), sat)
	}
	return int(idx)
}

// noteTransition records a satisfaction transition of problem constraint ci
// (to satisfied when sat, to unsatisfied otherwise) for the next
// FlushConsDeltas, queueing ci at most once. Call sites guard on non-learned
// constraints and an attached watcher only. The state byte carries the
// current satisfaction, so the flush never has to re-read the header.
func (e *Engine) noteTransition(ci int32, sat bool) {
	s := e.satState[ci]
	ns := (s &^ stateCur) | stateDirty
	if sat {
		ns |= stateCur
	}
	e.satState[ci] = ns
	if s&stateDirty == 0 {
		e.dirty = append(e.dirty, ci)
	}
}

// Assign makes l true at the current decision level with the given reason
// constraint (NoReason for decisions). It panics if l's variable is already
// assigned — callers must check first.
func (e *Engine) assign(l pb.Lit, reason int32) {
	v := l.Var()
	if e.value[v] != Unassigned {
		panic(fmt.Sprintf("engine: double assignment of %v", v))
	}
	if l.IsNeg() {
		e.value[v] = False
	} else {
		e.value[v] = True
	}
	e.level[v] = int32(e.DecisionLevel())
	e.reason[v] = reason
	e.trailPos[v] = int32(len(e.trail))
	e.trail = append(e.trail, l)
	if len(e.trail) > e.Stats.MaxTrail {
		e.Stats.MaxTrail = len(e.trail)
	}
	// Update trueSum eagerly: l is now true. The CSR rows cover only
	// problem constraints (never removed, never watched); the dynamic rows
	// may contain removed learned cuts. The watchSum decrement for ¬l is
	// deferred to Propagate's queue-consumption loop, where it fuses with
	// the conflict/implication check — one occurrence-list pass per
	// falsified literal instead of two. Until l is consumed, watchSum of
	// constraints containing ¬l reads transiently HIGH (slack too large):
	// implications and conflicts are merely delayed to consumption time,
	// never invented.
	watching := e.consWatcher != nil
	hdrs := e.hdrs
	for _, ref := range e.csr(l) {
		h := &hdrs[ref.cons]
		wasSat := h.trueSum >= h.degree
		h.trueSum += ref.coef
		if !wasSat && h.trueSum >= h.degree {
			e.numUnsatisfied--
			if watching {
				e.noteTransition(ref.cons, true)
			}
		}
	}
	if e.numDyn != 0 {
		for _, ref := range e.occDyn[l] {
			h := &e.hdrs[ref.cons]
			if h.flags&flagRemoved != 0 {
				continue
			}
			wasSat := h.trueSum >= h.degree
			h.trueSum += ref.coef
			if !wasSat && h.trueSum >= h.degree && h.flags&flagLearned == 0 {
				e.numUnsatisfied--
				if watching {
					e.noteTransition(ref.cons, true)
				}
			}
		}
	}
}

// Decide starts a new decision level and assigns l true.
func (e *Engine) Decide(l pb.Lit) {
	e.Stats.Decisions++
	e.trailLim = append(e.trailLim, len(e.trail))
	e.assign(l, NoReason)
}

// Enqueue asserts l at the current decision level with an optional reason
// constraint index (use NoReason for external assumptions). It returns false
// if l is already false (immediate conflict the caller must handle) and true
// otherwise (including when l was already true).
func (e *Engine) Enqueue(l pb.Lit, reason int32) bool {
	switch e.LitValue(l) {
	case True:
		return true
	case False:
		return false
	}
	e.assign(l, reason)
	return true
}

// Protect excludes a learned constraint from ReduceDB garbage collection
// (used for the incumbent cuts, which are semantically irreplaceable).
func (e *Engine) Protect(idx int) { e.hdrs[idx].flags |= flagProtected }

// bumpCons increases a constraint's activity (called when it participates
// in conflict analysis).
func (e *Engine) bumpCons(idx int32) {
	h := &e.hdrs[idx]
	h.activity += e.consInc
	if h.activity > rescaleLimit {
		for i := range e.hdrs {
			e.hdrs[i].activity *= 1 / rescaleLimit
		}
		e.consInc *= 1 / rescaleLimit
	}
}

// ReduceDB garbage-collects roughly half of the unprotected learned
// constraints, keeping the most active. It must be called at decision level
// 0 (after a restart): at the root no learned constraint above level 0 is a
// reason, and the reasons of root-level assignments are kept. Occurrence
// and watch entries are purged, and the term arenas are compacted in place
// (constraint indices stay stable; only arena offsets move), so the hot
// propagation loops shrink accordingly and freed spans are reclaimed.
// It returns the number of constraints removed.
func (e *Engine) ReduceDB() int {
	if e.DecisionLevel() != 0 {
		return 0
	}
	isRootReason := make(map[int32]bool)
	for _, l := range e.trail {
		if r := e.reason[l.Var()]; r != NoReason {
			isRootReason[r] = true
		}
	}
	var cands []int32
	for i := range e.hdrs {
		h := &e.hdrs[i]
		if h.learned() && !h.removed() && h.flags&flagProtected == 0 && !isRootReason[int32(i)] {
			cands = append(cands, int32(i))
		}
	}
	if len(cands) < 2 {
		return 0
	}
	sort.Slice(cands, func(a, b int) bool {
		return e.hdrs[cands[a]].activity < e.hdrs[cands[b]].activity
	})
	removed := 0
	for _, ci := range cands[:len(cands)/2] {
		e.hdrs[ci].flags |= flagRemoved
		removed++
	}
	// Purge dynamic occurrence and watch lists, then reclaim the arena
	// spans of the removed constraints.
	for li := range e.occDyn {
		lst := e.occDyn[li][:0]
		for _, ref := range e.occDyn[li] {
			if !e.hdrs[ref.cons].removed() {
				lst = append(lst, ref)
			}
		}
		e.occDyn[li] = lst
	}
	e.purgeWatchLists()
	e.compactArena()
	return removed
}

// compactArena slides the live constraint spans down over the holes left by
// removed constraints and truncates the arenas. Constraint indices are
// stable — only hdr.off moves — so reasons, occurrence entries and watch
// lists stay valid. Outstanding Cons views are invalidated (they alias the
// arenas), which is why ReduceDB sits on the between-nodes path only.
func (e *Engine) compactArena() {
	var w int32
	for i := range e.hdrs {
		h := &e.hdrs[i]
		if h.removed() {
			h.off, h.n = w, 0
			continue
		}
		if h.off != w {
			copy(e.lits[w:w+h.n], e.lits[h.off:h.off+h.n])
			copy(e.coefs[w:w+h.n], e.coefs[h.off:h.off+h.n])
			h.off = w
		}
		w += h.n
	}
	e.lits = e.lits[:w]
	e.coefs = e.coefs[:w]
}

// UpdateDegree tightens constraint idx to a strictly larger degree in place
// (used for the eq. 10/13 incumbent cuts, which dominate their predecessors
// whenever the upper bound improves — replacing beats accumulating, since
// every accumulated dense cut slows all future occurrence-list traversals).
// The constraint's terms must NOT have been coefficient-clipped against the
// old degree. The constraint is scheduled for re-examination on the next
// Propagate call.
func (e *Engine) UpdateDegree(idx int, degree int64) {
	h := &e.hdrs[idx]
	if degree <= h.degree {
		return
	}
	wasSat := h.satisfied()
	h.degree = degree
	// Tightening can un-satisfy a constraint in place. Only the incumbent
	// cuts (learned) are tightened today, but keep the problem-constraint
	// bookkeeping (and the watcher) honest should that ever change.
	if !h.learned() && wasSat && !h.satisfied() {
		e.numUnsatisfied++
		if e.consWatcher != nil {
			e.noteTransition(int32(idx), false)
		}
	}
	e.pending = append(e.pending, int32(idx))
}

// SeedUnits scans every constraint at the root level and enqueues literals
// that are implied before any decision is made (e.g. unit clauses, or large
// coefficients forced by the degree). Call once before the search loop, then
// Propagate. It returns the number of literals enqueued, or -1 when a
// constraint is conflicting at the root (the instance is unsatisfiable).
func (e *Engine) SeedUnits() int {
	count := 0
	for ci := range e.hdrs {
		h := &e.hdrs[ci]
		if h.flags&(flagRemoved|flagWatched) != 0 || h.satisfied() {
			continue
		}
		slack := h.watchSum - h.degree
		if slack < 0 {
			return -1
		}
		if slack >= h.maxCoef {
			continue
		}
		ls := e.lits[h.off : h.off+h.n]
		cs := e.coefs[h.off : h.off+h.n]
		for k, coef := range cs {
			if coef <= slack {
				break
			}
			if e.LitValue(ls[k]) == Unassigned {
				e.assign(ls[k], int32(ci))
				count++
			}
		}
	}
	return count
}

// propagateCons examines counter-based constraint ci after one of its
// literals was falsified (or its degree tightened): detects conflict,
// asserts implied literals. Returns false on conflict.
func (e *Engine) propagateCons(ci int32) bool {
	h := &e.hdrs[ci]
	if h.trueSum >= h.degree {
		return true
	}
	slack := h.watchSum - h.degree
	if slack < 0 {
		e.Stats.Conflicts++
		return false
	}
	if slack >= h.maxCoef {
		return true
	}
	ls := e.lits[h.off : h.off+h.n]
	cs := e.coefs[h.off : h.off+h.n]
	for k, coef := range cs {
		if coef <= slack {
			break // terms sorted by descending coefficient
		}
		if e.LitValue(ls[k]) == Unassigned {
			e.assign(ls[k], ci)
		}
	}
	return true
}

// Propagate runs Boolean constraint propagation to fixpoint. It returns the
// index of a conflicting constraint, or -1 if no conflict was found.
func (e *Engine) Propagate() int {
	// Re-examine constraints whose degree was tightened in place.
	for len(e.pending) > 0 {
		ci := e.pending[len(e.pending)-1]
		h := &e.hdrs[ci]
		if h.removed() || h.satisfied() {
			e.pending = e.pending[:len(e.pending)-1]
			continue
		}
		if h.watchSum-h.degree < 0 {
			e.Stats.Conflicts++
			// Leave it pending: after backtracking the caller re-propagates
			// and the constraint is examined again at the new level.
			return int(ci)
		}
		e.pending = e.pending[:len(e.pending)-1]
		if !e.propagateCons(ci) {
			return int(ci) // cannot happen (slack checked above); defensive
		}
	}
	// None of these slices grow or move during propagation (assign appends
	// only to the trail), so hoisting them out of the wave loop saves the
	// field reloads and bounds-check setup per consumed literal.
	hdrs, lits, coefs := e.hdrs, e.lits, e.coefs
	occCSR, occOff := e.occCSR, e.occOff
	for e.propHead < len(e.trail) {
		// The interrupt poll sits before consumption: once propHead moves
		// past l, the watchSum decrements below are owed and an early
		// return would leave BacktrackTo's restore unbalanced.
		if e.Interrupt != nil && e.Stats.Propagations&1023 == 0 && e.Interrupt() {
			return -1 // budget expired mid-fixpoint; caller aborts
		}
		l := e.trail[e.propHead]
		e.propHead++
		e.Stats.Propagations++
		// Literal ¬l became false: every constraint containing ¬l loses
		// watchSum here (the decrement deferred by assign) and may now be
		// conflicting or propagating — one fused pass per occurrence list.
		nl := l.Neg()
		if len(e.watchList[nl]) != 0 {
			if confl := e.propagateWatches(nl); confl >= 0 {
				// propHead already moved past l, so BacktrackTo will treat it
				// as consumed: the decrements must land even though the
				// watched clause conflict aborts this wave.
				for _, ref := range e.csr(nl) {
					e.hdrs[ref.cons].watchSum -= ref.coef
				}
				if e.numDyn != 0 {
					for _, ref := range e.occDyn[nl] {
						h := &e.hdrs[ref.cons]
						if h.flags&flagRemoved == 0 {
							h.watchSum -= ref.coef
						}
					}
				}
				return confl
			}
		}
		// On a counter conflict the remaining decrements for nl must still
		// be applied before returning, for the same reason.
		conflict := int32(-1)
		for _, ref := range occCSR[occOff[nl]:occOff[nl+1]] {
			h := &hdrs[ref.cons]
			h.watchSum -= ref.coef
			if conflict >= 0 || h.trueSum >= h.degree {
				continue
			}
			slack := h.watchSum - h.degree
			if slack < 0 {
				e.Stats.Conflicts++
				conflict = ref.cons
				continue
			}
			if slack >= h.maxCoef {
				continue
			}
			ls := lits[h.off : h.off+h.n]
			cs := coefs[h.off : h.off+h.n]
			for k, coef := range cs {
				if coef <= slack {
					break // terms sorted by descending coefficient
				}
				if e.LitValue(ls[k]) == Unassigned {
					e.assign(ls[k], ref.cons)
				}
			}
		}
		if e.numDyn != 0 {
			for _, ref := range e.occDyn[nl] {
				h := &e.hdrs[ref.cons]
				if h.flags&flagRemoved != 0 {
					continue
				}
				h.watchSum -= ref.coef
				if conflict >= 0 || h.trueSum >= h.degree {
					continue
				}
				slack := h.watchSum - h.degree
				if slack < 0 {
					e.Stats.Conflicts++
					conflict = ref.cons
					continue
				}
				if slack >= h.maxCoef {
					continue
				}
				ls := e.lits[h.off : h.off+h.n]
				cs := e.coefs[h.off : h.off+h.n]
				for k, coef := range cs {
					if coef <= slack {
						break
					}
					if e.LitValue(ls[k]) == Unassigned {
						e.assign(ls[k], ref.cons)
					}
				}
			}
		}
		if conflict >= 0 {
			return int(conflict)
		}
	}
	return -1
}

// BacktrackTo undoes all assignments above the given decision level.
func (e *Engine) BacktrackTo(lvl int) {
	if lvl >= e.DecisionLevel() {
		return
	}
	watching := e.consWatcher != nil
	limit := e.trailLim[lvl]
	// Only consumed literals (trail position < propHead) had their watchSum
	// decrement applied in Propagate; restore watchSum for exactly those.
	// trueSum is updated eagerly in assign, so it restores unconditionally.
	ph := e.propHead
	hdrs := e.hdrs
	occCSR, occOff := e.occCSR, e.occOff
	for i := len(e.trail) - 1; i >= limit; i-- {
		l := e.trail[i]
		v := l.Var()
		// Restore counters.
		for _, ref := range occCSR[occOff[l]:occOff[l+1]] {
			h := &hdrs[ref.cons]
			wasSat := h.trueSum >= h.degree
			h.trueSum -= ref.coef
			if wasSat && h.trueSum < h.degree {
				e.numUnsatisfied++
				if watching {
					e.noteTransition(ref.cons, false)
				}
			}
		}
		if e.numDyn != 0 {
			for _, ref := range e.occDyn[l] {
				h := &e.hdrs[ref.cons]
				if h.flags&flagRemoved != 0 {
					continue
				}
				wasSat := h.trueSum >= h.degree
				h.trueSum -= ref.coef
				if wasSat && h.trueSum < h.degree && h.flags&flagLearned == 0 {
					e.numUnsatisfied++
					if watching {
						e.noteTransition(ref.cons, false)
					}
				}
			}
		}
		if i < ph {
			nl := l.Neg()
			for _, ref := range occCSR[occOff[nl]:occOff[nl+1]] {
				hdrs[ref.cons].watchSum += ref.coef
			}
			if e.numDyn != 0 {
				for _, ref := range e.occDyn[nl] {
					h := &e.hdrs[ref.cons]
					if h.flags&flagRemoved != 0 {
						continue
					}
					h.watchSum += ref.coef
				}
			}
		}
		e.phase[v] = e.value[v]
		e.value[v] = Unassigned
		e.reason[v] = NoReason
		e.heap.pushIfAbsent(v)
	}
	e.trail = e.trail[:limit]
	e.trailLim = e.trailLim[:lvl]
	if e.propHead > limit {
		e.propHead = limit
	}
}

// reasonSide returns the antecedent literals for the assignment of l (which
// was propagated by constraint consIdx): the literals of the constraint that
// are false and were assigned strictly before l. Appends to out.
func (e *Engine) reasonSide(l pb.Lit, consIdx int32, out []pb.Lit) []pb.Lit {
	h := &e.hdrs[consIdx]
	pos := e.trailPos[l.Var()]
	for _, q := range e.lits[h.off : h.off+h.n] {
		if q.Var() == l.Var() {
			continue
		}
		if e.LitValue(q) == False && e.trailPos[q.Var()] < pos {
			out = append(out, q)
		}
	}
	return out
}

// conflictSide returns the falsified literals of the conflicting constraint.
func (e *Engine) conflictSide(consIdx int, out []pb.Lit) []pb.Lit {
	h := &e.hdrs[consIdx]
	for _, q := range e.lits[h.off : h.off+h.n] {
		if e.LitValue(q) == False {
			out = append(out, q)
		}
	}
	return out
}

// AnalyzeResult is the outcome of conflict analysis.
type AnalyzeResult struct {
	// Learnt is the learned clause; Learnt[0] is the asserting literal.
	Learnt []pb.Lit
	// BackLevel is the decision level to backtrack to before asserting.
	BackLevel int
	// Unsat indicates the conflict is at (or resolves to) level 0: the
	// formula (plus learned constraints) is unsatisfiable.
	Unsat bool
}

// AnalyzeConstraint performs 1UIP conflict analysis starting from the
// conflicting constraint consIdx.
func (e *Engine) AnalyzeConstraint(consIdx int) AnalyzeResult {
	e.bumpCons(int32(consIdx))
	seed := e.conflictSide(consIdx, nil)
	return e.AnalyzeClause(seed)
}

// AnalyzeClause performs 1UIP conflict analysis starting from a conflicting
// clause: a set of literals all currently false, typically the bound-conflict
// explanation ω_bc = ω_pp ∪ ω_pl of §4. The caller must ensure every literal
// is false and at least one was assigned at the current decision level
// (backtrack to the clause's maximum level first if necessary).
func (e *Engine) AnalyzeClause(seed []pb.Lit) AnalyzeResult {
	curLevel := e.DecisionLevel()
	if curLevel == 0 {
		return AnalyzeResult{Unsat: true}
	}
	var learnt []pb.Lit
	counter := 0
	for v := range e.seen {
		e.seen[v] = false
	}
	bump := make([]pb.Var, 0, 16)

	absorb := func(lits []pb.Lit) {
		for _, q := range lits {
			v := q.Var()
			if e.seen[v] {
				continue
			}
			e.seen[v] = true
			bump = append(bump, v)
			switch {
			case int(e.level[v]) == curLevel:
				counter++
			case e.level[v] > 0:
				learnt = append(learnt, q)
			}
		}
	}
	absorb(seed)
	if counter == 0 {
		// No literal at the current level: the caller should have backtracked
		// to the seed's maximum level first. Treat the whole seed as the
		// learned clause (still sound, possibly weaker).
		return e.clauseFromSeed(seed, bump)
	}

	idx := len(e.trail) - 1
	var p pb.Lit = pb.NoLit
	scratch := make([]pb.Lit, 0, 16)
	for {
		for idx >= 0 && !e.seen[e.trail[idx].Var()] {
			idx--
		}
		if idx < 0 {
			// Should not happen; degrade to seed clause.
			return e.clauseFromSeed(seed, bump)
		}
		p = e.trail[idx]
		idx--
		counter--
		if counter == 0 {
			break
		}
		r := e.reason[p.Var()]
		if r == NoReason {
			// Decision reached with more current-level literals pending:
			// cannot happen in a well-formed trail (only one decision per
			// level); defensive fallback.
			return e.clauseFromSeed(seed, bump)
		}
		e.bumpCons(r)
		scratch = scratch[:0]
		scratch = e.reasonSide(p, r, scratch)
		absorb(scratch)
	}
	// p is the first UIP; the learned clause is learnt ∪ {¬p}.
	asserting := p.Neg()
	out := make([]pb.Lit, 0, len(learnt)+1)
	out = append(out, asserting)
	out = append(out, learnt...)

	// Compute backjump level: maximum level among the non-asserting lits.
	back := 0
	for _, q := range out[1:] {
		if l := int(e.level[q.Var()]); l > back {
			back = l
		}
	}
	e.bumpAll(bump)
	return AnalyzeResult{Learnt: out, BackLevel: back}
}

// clauseFromSeed turns a seed with no current-level literal into an analyze
// result: backtrack below its maximum level and use the seed itself.
func (e *Engine) clauseFromSeed(seed []pb.Lit, bump []pb.Var) AnalyzeResult {
	max1, max2 := -1, -1 // two highest levels (max2 = second occurrence slot)
	var assertLit pb.Lit = pb.NoLit
	for _, q := range seed {
		l := int(e.level[q.Var()])
		if l > max1 {
			max2 = max1
			max1 = l
			assertLit = q
		} else if l > max2 {
			max2 = l
		}
	}
	if max1 <= 0 {
		return AnalyzeResult{Unsat: true}
	}
	if max2 < 0 {
		max2 = 0
	}
	out := make([]pb.Lit, 0, len(seed))
	out = append(out, assertLit)
	for _, q := range seed {
		if q != assertLit && e.level[q.Var()] > 0 {
			out = append(out, q)
		}
	}
	e.bumpAll(bump)
	return AnalyzeResult{Learnt: out, BackLevel: max2}
}

// AnalyzeFinal explains why assumption literal l cannot be set True: it
// returns the subset of currently-assigned decision literals (the caller's
// assumptions, when assumptions are the only decisions on the trail) whose
// joint assignment propagates l to False, with l itself included. The caller
// must have observed LitValue(l) == False.
//
// The walk mirrors AnalyzeClause but resolves all the way back instead of
// stopping at the first UIP: starting from l's variable, repeatedly replace
// propagated literals by their reason-side antecedents; literals with
// NoReason are decisions and are emitted verbatim. When every decision below
// the walk is an assumption (the assumption-placement discipline in
// internal/core guarantees this: real branching only starts once all
// assumptions are enqueued), the returned set is exactly the failed
// assumption subset — an unsat core over the assumptions.
func (e *Engine) AnalyzeFinal(l pb.Lit) []pb.Lit {
	out := []pb.Lit{l}
	if e.Level(l.Var()) == 0 {
		// l is falsified by root-level propagation alone: the core is {l}.
		return out
	}
	for v := range e.seen {
		e.seen[v] = false
	}
	e.seen[l.Var()] = true
	scratch := make([]pb.Lit, 0, 16)
	start := 0
	if len(e.trailLim) > 0 {
		start = e.trailLim[0]
	}
	for idx := len(e.trail) - 1; idx >= start; idx-- {
		p := e.trail[idx]
		if !e.seen[p.Var()] {
			continue
		}
		if r := e.reason[p.Var()]; r == NoReason {
			// A decision the falsification depends on: part of the core. The
			// trail holds the literal as decided, which is the assumption as
			// assumed — including p == l.Neg() when two contradictory
			// assumptions were both passed in.
			out = append(out, p)
		} else {
			scratch = scratch[:0]
			scratch = e.reasonSide(p, r, scratch)
			for _, q := range scratch {
				if e.level[q.Var()] > 0 {
					e.seen[q.Var()] = true
				}
			}
		}
	}
	return out
}

// LearnAndBackjump installs the result of an analysis: backtracks to
// res.BackLevel, adds the learned clause, and asserts its first literal.
// It returns the new constraint index, or -1 when res is Unsat or the learned
// clause is empty.
func (e *Engine) LearnAndBackjump(res AnalyzeResult) int {
	if res.Unsat || len(res.Learnt) == 0 {
		return -1
	}
	e.BacktrackTo(res.BackLevel)
	var idx int
	if len(res.Learnt) >= 2 {
		idx = e.addWatchedClause(res.Learnt)
	} else {
		idx = e.AddCons([]pb.Term{{Coef: 1, Lit: res.Learnt[0]}}, 1, true)
	}
	// Assert the UIP literal with the new clause as reason.
	if e.LitValue(res.Learnt[0]) == Unassigned {
		e.assign(res.Learnt[0], int32(idx))
	}
	e.varDecay()
	return idx
}

// --- VSIDS ---

const (
	varDecayFactor  = 1.0 / 0.95
	consDecayFactor = 1.0 / 0.999
	rescaleLimit    = 1e100
)

func (e *Engine) bumpAll(vars []pb.Var) {
	for _, v := range vars {
		e.BumpVar(v)
	}
}

// BumpVar increases v's VSIDS activity.
func (e *Engine) BumpVar(v pb.Var) {
	e.activity[v] += e.varInc
	if e.activity[v] > rescaleLimit {
		for i := range e.activity {
			e.activity[i] *= 1 / rescaleLimit
		}
		e.varInc *= 1 / rescaleLimit
	}
	e.heap.update(v)
}

func (e *Engine) varDecay() {
	e.varInc *= varDecayFactor
	e.consInc *= consDecayFactor
}

// Activity returns the VSIDS activity of v.
func (e *Engine) Activity(v pb.Var) float64 { return e.activity[v] }

// SeedRandom arms the engine's explicit, per-solver RNG: with probability
// freq each branch decision picks a random unassigned variable instead of
// the VSIDS maximum. freq <= 0 disables randomization (the default). Runs
// are reproducible for a fixed (seed, freq): this is the portfolio's
// diversification knob, seeded per member.
func (e *Engine) SeedRandom(seed int64, freq float64) {
	if freq <= 0 {
		e.rng, e.randFreq = nil, 0
		return
	}
	e.rng = rand.New(rand.NewSource(seed))
	e.randFreq = freq
}

// PickBranchVar returns the unassigned variable with maximal VSIDS activity,
// or -1 when all variables are assigned. With SeedRandom armed, a fraction
// of picks is uniformly random over unassigned variables instead.
func (e *Engine) PickBranchVar() pb.Var {
	if e.rng != nil && e.rng.Float64() < e.randFreq {
		// A few random probes; on repeated misses fall through to VSIDS
		// (the heap pop below). The probed variable stays in the heap —
		// pops skip assigned variables anyway.
		for i := 0; i < 8; i++ {
			v := pb.Var(e.rng.Intn(e.nVars))
			if e.value[v] == Unassigned {
				e.Stats.RandomDecisions++
				return v
			}
		}
	}
	for e.heap.size() > 0 {
		v := e.heap.pop()
		if e.value[v] == Unassigned {
			return v
		}
	}
	return -1
}

// PreferredPhase returns the saved phase of v (False initially, which is the
// cheapest polarity for non-negative costs).
func (e *Engine) PreferredPhase(v pb.Var) Value { return e.phase[v] }

// SetPhase overrides the saved phase (used by LP-guided branching).
func (e *Engine) SetPhase(v pb.Var, val Value) { e.phase[v] = val }

// --- Solution & reduced-problem access ---

// Values returns the current complete assignment as booleans; unassigned
// variables default to false (the zero-cost polarity). Only meaningful when
// every problem constraint is satisfied.
func (e *Engine) Values() []bool {
	out := make([]bool, e.nVars)
	for v := 0; v < e.nVars; v++ {
		out[v] = e.value[v] == True
	}
	return out
}

// UnsatisfiedCons calls fn for every problem constraint not yet satisfied by
// true literals, passing the constraint index, a transient view and the
// residual degree (Degree − trueSum > 0). Learned constraints are skipped:
// lower bounds must be estimated on the problem itself (learned bound
// clauses depend on the incumbent and would make explanations circular).
func (e *Engine) UnsatisfiedCons(fn func(idx int, c Cons, residual int64)) {
	for i := range e.hdrs {
		h := &e.hdrs[i]
		if h.flags&(flagRemoved|flagLearned) != 0 || h.satisfied() {
			continue
		}
		fn(i, e.Cons(i), h.degree-h.trueSum)
	}
}

// CheckInvariants verifies counter consistency (test hook); it recomputes
// watchSum/trueSum from scratch and compares.
func (e *Engine) CheckInvariants() error {
	unsat := 0
	for i := range e.hdrs {
		h := &e.hdrs[i]
		if h.removed() || h.watched() {
			continue
		}
		var ws, ts int64
		ls := e.lits[h.off : h.off+h.n]
		cs := e.coefs[h.off : h.off+h.n]
		for k, l := range ls {
			switch e.LitValue(l) {
			case True:
				ws += cs[k]
				ts += cs[k]
			case Unassigned:
				ws += cs[k]
			case False:
				// Deferred decrement: a falsified literal leaves watchSum
				// only once Propagate consumes its complement from the
				// trail queue.
				if int(e.trailPos[l.Var()]) >= e.propHead {
					ws += cs[k]
				}
			}
		}
		if ws != h.watchSum || ts != h.trueSum {
			return fmt.Errorf("cons %d: watchSum=%d(want %d) trueSum=%d(want %d)",
				i, h.watchSum, ws, h.trueSum, ts)
		}
		if !h.learned() && ts < h.degree {
			unsat++
		}
	}
	if unsat != e.numUnsatisfied {
		return fmt.Errorf("numUnsatisfied=%d want %d", e.numUnsatisfied, unsat)
	}
	return nil
}

// --- binary heap ordered by activity ---

type varHeap struct {
	act     []float64
	heap    []pb.Var
	indices []int32 // position in heap, -1 if absent
}

func newVarHeap(act []float64) *varHeap {
	h := &varHeap{act: act, indices: make([]int32, len(act))}
	for i := range h.indices {
		h.indices[i] = -1
	}
	return h
}

func (h *varHeap) size() int { return len(h.heap) }

func (h *varHeap) less(i, j int) bool { return h.act[h.heap[i]] > h.act[h.heap[j]] }

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.indices[h.heap[i]] = int32(i)
	h.indices[h.heap[j]] = int32(j)
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *varHeap) push(v pb.Var) {
	if h.indices[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = int32(len(h.heap) - 1)
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pushIfAbsent(v pb.Var) { h.push(v) }

func (h *varHeap) pop() pb.Var {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.indices[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v
}

func (h *varHeap) update(v pb.Var) {
	if i := h.indices[v]; i >= 0 {
		h.up(int(i))
		h.down(int(h.indices[v]))
	}
}

// MaxInt64 re-exported bound used by callers sizing budgets.
const MaxInt64 = math.MaxInt64
