// Package engine implements the SAT-style search substrate that bsolo builds
// on (§1, §3 of the paper): Boolean constraint propagation generalized to
// pseudo-Boolean constraints, conflict-based clause learning with 1UIP
// analysis, non-chronological backtracking, and VSIDS branching.
//
// The engine deliberately exposes a low-level stepping API (Decide /
// Propagate / Analyze / BacktrackTo) instead of a closed solve loop: the
// branch-and-bound driver in internal/core interleaves lower-bound
// computation, bound-conflict generation and constraint inference between
// propagation fixpoints, which requires owning the search loop.
//
// Propagation is counter-based: every constraint tracks the coefficient sum
// of its non-false literals (watchSum) and of its true literals (trueSum).
// With slack = watchSum − degree,
//
//	slack < 0                        ⇒ the constraint is conflicting,
//	coef(l) > slack, l unassigned    ⇒ l is implied true,
//	trueSum ≥ degree                 ⇒ the constraint is satisfied.
package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/pb"
)

// Value of a variable during search.
type Value int8

const (
	// False assignment.
	False Value = iota
	// True assignment.
	True
	// Unassigned variable.
	Unassigned
)

// NoReason marks decision variables and external assumptions in the reason
// slice.
const NoReason int32 = -1

// Cons is a constraint as stored by the engine.
type Cons struct {
	Terms   []pb.Term
	Degree  int64
	Learned bool

	watchSum int64 // Σ coef over non-false literals
	trueSum  int64 // Σ coef over true literals
	maxCoef  int64

	// activity drives learned-constraint garbage collection: bumped when
	// the constraint participates in conflict analysis, decayed per
	// conflict.
	activity float64
	// protected learned constraints (incumbent cuts) survive ReduceDB.
	protected bool
	// removed marks a garbage-collected constraint; all engine loops skip
	// it (occurrence entries are purged lazily).
	removed bool
	// watched marks learned clauses propagated by the two-watched-literal
	// scheme (see watched.go); they have no occurrence entries and no
	// satisfaction counters.
	watched bool
}

// Removed reports whether the constraint was garbage-collected.
func (c *Cons) Removed() bool { return c.removed }

// Slack returns watchSum − degree under the current assignment.
func (c *Cons) Slack() int64 { return c.watchSum - c.Degree }

// Satisfied reports whether the constraint is already satisfied by true
// literals alone.
func (c *Cons) Satisfied() bool { return c.trueSum >= c.Degree }

// TrueSum returns the coefficient sum of currently-true literals.
func (c *Cons) TrueSum() int64 { return c.trueSum }

type occRef struct {
	cons int32
	term int32
}

// Stats counts search events.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Learned      int64
	MaxTrail     int
	// Imported counts foreign clauses installed via ImportClause (units and
	// watched clauses; rejected or dropped imports are not counted).
	Imported int64
	// RandomDecisions counts branch picks made by the seeded RNG (see
	// SeedRandom) instead of VSIDS.
	RandomDecisions int64
}

// Engine is the CDCL search state.
type Engine struct {
	nVars int
	cons  []*Cons
	occ   [][]occRef // per literal: constraints containing it

	value    []Value
	level    []int32
	reason   []int32 // constraint index, or NoReason
	trailPos []int32
	trail    []pb.Lit
	trailLim []int
	propHead int

	// numUnsatisfied counts problem (non-learned) constraints that are not
	// yet satisfied by true literals.
	numUnsatisfied int

	activity []float64
	varInc   float64
	consInc  float64
	heap     *varHeap
	phase    []Value

	// seen is scratch space for Analyze.
	seen []bool

	// pending holds constraint indices whose degree was tightened in place
	// (UpdateDegree); Propagate re-examines them before draining the trail,
	// since counter-based propagation only fires on literal falsification.
	pending []int32

	// watchList[l] lists the watched learned clauses currently watching
	// literal l (see watched.go).
	watchList [][]int32

	// consWatcher, when non-nil, observes satisfaction transitions of
	// problem constraints (see notify.go). Registered via SetConsWatcher.
	consWatcher ConsWatcher

	// rng, when non-nil, injects seeded random branching: with probability
	// randFreq a decision picks a random unassigned variable instead of the
	// VSIDS maximum (portfolio diversification). Deterministic per seed —
	// the only randomness in the engine, and always explicit.
	rng      *rand.Rand
	randFreq float64

	// Interrupt, when non-nil, is polled every ~1k propagations inside
	// Propagate; returning true stops the fixpoint early and Propagate
	// returns -1 (no conflict). The caller is expected to notice that its
	// budget expired and abort the search — the engine state stays
	// consistent (merely not yet at fixpoint; a later Propagate resumes).
	// This is how deadline/cancellation checks reach propagation-heavy
	// nodes that would otherwise overshoot the time limit by seconds.
	Interrupt func() bool

	Stats Stats
}

// New builds an engine for the given normalized problem. Constraints that
// are unsatisfiable on their own (degree exceeding coefficient sum) make the
// root level conflicting; detect that with an initial Propagate.
func New(p *pb.Problem) *Engine {
	e := &Engine{
		nVars:     p.NumVars,
		value:     make([]Value, p.NumVars),
		level:     make([]int32, p.NumVars),
		reason:    make([]int32, p.NumVars),
		trailPos:  make([]int32, p.NumVars),
		activity:  make([]float64, p.NumVars),
		phase:     make([]Value, p.NumVars),
		seen:      make([]bool, p.NumVars),
		occ:       make([][]occRef, 2*p.NumVars),
		watchList: make([][]int32, 2*p.NumVars),
		varInc:    1,
		consInc:   1,
	}
	for v := range e.value {
		e.value[v] = Unassigned
		e.reason[v] = NoReason
	}
	e.heap = newVarHeap(e.activity)
	for v := 0; v < p.NumVars; v++ {
		e.heap.push(pb.Var(v))
	}
	for _, c := range p.Constraints {
		e.AddCons(c.Terms, c.Degree, false)
	}
	return e
}

// NumVars returns the variable count.
func (e *Engine) NumVars() int { return e.nVars }

// NumCons returns the number of stored constraints (problem + learned).
func (e *Engine) NumCons() int { return len(e.cons) }

// Cons returns the i-th stored constraint (read-only use).
func (e *Engine) Cons(i int) *Cons { return e.cons[i] }

// Value returns the current assignment of v.
func (e *Engine) Value(v pb.Var) Value { return e.value[v] }

// LitValue returns the truth value of literal l under the current partial
// assignment.
func (e *Engine) LitValue(l pb.Lit) Value {
	v := e.value[l.Var()]
	if v == Unassigned {
		return Unassigned
	}
	if l.IsNeg() {
		return 1 - v
	}
	return v
}

// Level returns the decision level at which v was assigned (meaningful only
// when assigned).
func (e *Engine) Level(v pb.Var) int { return int(e.level[v]) }

// TrailPos returns the trail position of v's assignment.
func (e *Engine) TrailPos(v pb.Var) int { return int(e.trailPos[v]) }

// DecisionLevel returns the current decision level (0 = root).
func (e *Engine) DecisionLevel() int { return len(e.trailLim) }

// TrailSize returns the number of assigned variables.
func (e *Engine) TrailSize() int { return len(e.trail) }

// TrailLit returns the i-th literal on the trail.
func (e *Engine) TrailLit(i int) pb.Lit { return e.trail[i] }

// DecisionLit returns the decision literal of level lvl (1-based; lvl must
// be in [1, DecisionLevel()]).
func (e *Engine) DecisionLit(lvl int) pb.Lit { return e.trail[e.trailLim[lvl-1]] }

// NumUnsatisfied returns the count of problem constraints not yet satisfied
// by true literals.
func (e *Engine) NumUnsatisfied() int { return e.numUnsatisfied }

// AddCons appends the normalized constraint Σ terms ≥ degree to the store,
// initializing its propagation counters from the current assignment. It
// returns the constraint index. The caller must ensure terms are normalized
// (positive clipped coefficients, one term per variable) — constraints from
// pb.Normalize or derived clauses satisfy this. A clause of literals can be
// added with coefficient 1 each and degree 1.
func (e *Engine) AddCons(terms []pb.Term, degree int64, learned bool) int {
	c := &Cons{
		Terms:   append([]pb.Term(nil), terms...),
		Degree:  degree,
		Learned: learned,
	}
	idx := int32(len(e.cons))
	e.cons = append(e.cons, c)
	if learned {
		e.Stats.Learned++
	}
	for ti, t := range c.Terms {
		if t.Coef > c.maxCoef {
			c.maxCoef = t.Coef
		}
		// occ[l] lists exactly the constraints whose stored term literal is
		// l: when l turns true those constraints gain trueSum, and when l
		// turns false (its complement assigned) they lose watchSum.
		e.occ[t.Lit] = append(e.occ[t.Lit], occRef{idx, int32(ti)})
		switch e.LitValue(t.Lit) {
		case Unassigned:
			c.watchSum += t.Coef
		case True:
			c.watchSum += t.Coef
			c.trueSum += t.Coef
		}
	}
	if !learned {
		if !c.Satisfied() {
			e.numUnsatisfied++
		}
		if e.consWatcher != nil {
			e.consWatcher.ConsAdded(int(idx), c.Satisfied())
		}
	}
	return int(idx)
}

// Assign makes l true at the current decision level with the given reason
// constraint (NoReason for decisions). It panics if l's variable is already
// assigned — callers must check first.
func (e *Engine) assign(l pb.Lit, reason int32) {
	v := l.Var()
	if e.value[v] != Unassigned {
		panic(fmt.Sprintf("engine: double assignment of %v", v))
	}
	if l.IsNeg() {
		e.value[v] = False
	} else {
		e.value[v] = True
	}
	e.level[v] = int32(e.DecisionLevel())
	e.reason[v] = reason
	e.trailPos[v] = int32(len(e.trail))
	e.trail = append(e.trail, l)
	if len(e.trail) > e.Stats.MaxTrail {
		e.Stats.MaxTrail = len(e.trail)
	}
	// Update counters: l is now true, ¬l false.
	for _, ref := range e.occ[l] {
		c := e.cons[ref.cons]
		if c.removed {
			continue
		}
		wasSat := c.Satisfied()
		c.trueSum += c.Terms[ref.term].Coef
		if !wasSat && c.Satisfied() && !c.Learned {
			e.numUnsatisfied--
			if e.consWatcher != nil {
				e.consWatcher.ConsSatisfied(int(ref.cons))
			}
		}
	}
	for _, ref := range e.occ[l.Neg()] {
		c := e.cons[ref.cons]
		if c.removed {
			continue
		}
		c.watchSum -= c.Terms[ref.term].Coef
	}
}

// Decide starts a new decision level and assigns l true.
func (e *Engine) Decide(l pb.Lit) {
	e.Stats.Decisions++
	e.trailLim = append(e.trailLim, len(e.trail))
	e.assign(l, NoReason)
}

// Enqueue asserts l at the current decision level with an optional reason
// constraint index (use NoReason for external assumptions). It returns false
// if l is already false (immediate conflict the caller must handle) and true
// otherwise (including when l was already true).
func (e *Engine) Enqueue(l pb.Lit, reason int32) bool {
	switch e.LitValue(l) {
	case True:
		return true
	case False:
		return false
	}
	e.assign(l, reason)
	return true
}

// Protect excludes a learned constraint from ReduceDB garbage collection
// (used for the incumbent cuts, which are semantically irreplaceable).
func (e *Engine) Protect(idx int) { e.cons[idx].protected = true }

// bumpCons increases a constraint's activity (called when it participates
// in conflict analysis).
func (e *Engine) bumpCons(idx int32) {
	c := e.cons[idx]
	c.activity += e.consInc
	if c.activity > rescaleLimit {
		for _, cc := range e.cons {
			cc.activity *= 1 / rescaleLimit
		}
		e.consInc *= 1 / rescaleLimit
	}
}

// ReduceDB garbage-collects roughly half of the unprotected learned
// constraints, keeping the most active. It must be called at decision level
// 0 (after a restart): at the root no learned constraint above level 0 is a
// reason, and the reasons of root-level assignments are kept. Occurrence
// entries are purged so the hot propagation loops shrink accordingly.
// It returns the number of constraints removed.
func (e *Engine) ReduceDB() int {
	if e.DecisionLevel() != 0 {
		return 0
	}
	isRootReason := make(map[int32]bool)
	for _, l := range e.trail {
		if r := e.reason[l.Var()]; r != NoReason {
			isRootReason[r] = true
		}
	}
	var cands []int32
	for i, c := range e.cons {
		if c.Learned && !c.removed && !c.protected && !isRootReason[int32(i)] {
			cands = append(cands, int32(i))
		}
	}
	if len(cands) < 2 {
		return 0
	}
	sort.Slice(cands, func(a, b int) bool {
		return e.cons[cands[a]].activity < e.cons[cands[b]].activity
	})
	removed := 0
	for _, ci := range cands[:len(cands)/2] {
		c := e.cons[ci]
		c.removed = true
		c.Terms = nil // free memory; occ purge below drops the references
		removed++
	}
	// Purge occurrence and watch lists.
	for li := range e.occ {
		lst := e.occ[li][:0]
		for _, ref := range e.occ[li] {
			if !e.cons[ref.cons].removed {
				lst = append(lst, ref)
			}
		}
		e.occ[li] = lst
	}
	e.purgeWatchLists()
	return removed
}

// UpdateDegree tightens constraint idx to a strictly larger degree in place
// (used for the eq. 10/13 incumbent cuts, which dominate their predecessors
// whenever the upper bound improves — replacing beats accumulating, since
// every accumulated dense cut slows all future occurrence-list traversals).
// The constraint's terms must NOT have been coefficient-clipped against the
// old degree. The constraint is scheduled for re-examination on the next
// Propagate call.
func (e *Engine) UpdateDegree(idx int, degree int64) {
	c := e.cons[idx]
	if degree <= c.Degree {
		return
	}
	wasSat := c.Satisfied()
	c.Degree = degree
	// Tightening can un-satisfy a constraint in place. Only the incumbent
	// cuts (learned) are tightened today, but keep the problem-constraint
	// bookkeeping (and the watcher) honest should that ever change.
	if !c.Learned && wasSat && !c.Satisfied() {
		e.numUnsatisfied++
		if e.consWatcher != nil {
			e.consWatcher.ConsUnsatisfied(idx)
		}
	}
	e.pending = append(e.pending, int32(idx))
}

// SeedUnits scans every constraint at the root level and enqueues literals
// that are implied before any decision is made (e.g. unit clauses, or large
// coefficients forced by the degree). Call once before the search loop, then
// Propagate. It returns the number of literals enqueued, or -1 when a
// constraint is conflicting at the root (the instance is unsatisfiable).
func (e *Engine) SeedUnits() int {
	count := 0
	for ci, c := range e.cons {
		if c.removed || c.watched || c.Satisfied() {
			continue
		}
		slack := c.watchSum - c.Degree
		if slack < 0 {
			return -1
		}
		if slack >= c.maxCoef {
			continue
		}
		for _, t := range c.Terms {
			if t.Coef <= slack {
				break
			}
			if e.LitValue(t.Lit) == Unassigned {
				e.assign(t.Lit, int32(ci))
				count++
			}
		}
	}
	return count
}

// Propagate runs Boolean constraint propagation to fixpoint. It returns the
// index of a conflicting constraint, or -1 if no conflict was found.
func (e *Engine) Propagate() int {
	// Re-examine constraints whose degree was tightened in place.
	for len(e.pending) > 0 {
		ci := e.pending[len(e.pending)-1]
		c := e.cons[ci]
		if c.removed || c.Satisfied() {
			e.pending = e.pending[:len(e.pending)-1]
			continue
		}
		slack := c.watchSum - c.Degree
		if slack < 0 {
			e.Stats.Conflicts++
			// Leave it pending: after backtracking the caller re-propagates
			// and the constraint is examined again at the new level.
			return int(ci)
		}
		e.pending = e.pending[:len(e.pending)-1]
		if slack >= c.maxCoef {
			continue
		}
		for _, t := range c.Terms {
			if t.Coef <= slack {
				break
			}
			if e.LitValue(t.Lit) == Unassigned {
				e.assign(t.Lit, ci)
			}
		}
	}
	for e.propHead < len(e.trail) {
		l := e.trail[e.propHead]
		e.propHead++
		e.Stats.Propagations++
		if e.Interrupt != nil && e.Stats.Propagations&1023 == 0 && e.Interrupt() {
			return -1 // budget expired mid-fixpoint; caller aborts
		}
		// Literal ¬l became false: every constraint containing ¬l lost
		// weight and may now be conflicting or propagating.
		nl := l.Neg()
		if confl := e.propagateWatches(nl); confl >= 0 {
			return confl
		}
		for _, ref := range e.occ[nl] {
			c := e.cons[ref.cons]
			if c.Terms[ref.term].Lit != nl {
				continue
			}
			if c.Satisfied() {
				continue
			}
			slack := c.watchSum - c.Degree
			if slack < 0 {
				e.Stats.Conflicts++
				return int(ref.cons)
			}
			if slack >= c.maxCoef {
				continue
			}
			for _, t := range c.Terms {
				if t.Coef <= slack {
					break // terms sorted by descending coefficient
				}
				if e.LitValue(t.Lit) == Unassigned {
					e.assign(t.Lit, ref.cons)
				}
			}
		}
	}
	return -1
}

// BacktrackTo undoes all assignments above the given decision level.
func (e *Engine) BacktrackTo(lvl int) {
	if lvl >= e.DecisionLevel() {
		return
	}
	limit := e.trailLim[lvl]
	for i := len(e.trail) - 1; i >= limit; i-- {
		l := e.trail[i]
		v := l.Var()
		// Restore counters.
		for _, ref := range e.occ[l] {
			c := e.cons[ref.cons]
			if c.removed {
				continue
			}
			wasSat := c.Satisfied()
			c.trueSum -= c.Terms[ref.term].Coef
			if wasSat && !c.Satisfied() && !c.Learned {
				e.numUnsatisfied++
				if e.consWatcher != nil {
					e.consWatcher.ConsUnsatisfied(int(ref.cons))
				}
			}
		}
		for _, ref := range e.occ[l.Neg()] {
			c := e.cons[ref.cons]
			if c.removed {
				continue
			}
			c.watchSum += c.Terms[ref.term].Coef
		}
		e.phase[v] = e.value[v]
		e.value[v] = Unassigned
		e.reason[v] = NoReason
		e.heap.pushIfAbsent(v)
	}
	e.trail = e.trail[:limit]
	e.trailLim = e.trailLim[:lvl]
	if e.propHead > limit {
		e.propHead = limit
	}
}

// reasonSide returns the antecedent literals for the assignment of l (which
// was propagated by constraint consIdx): the literals of the constraint that
// are false and were assigned strictly before l. Appends to out.
func (e *Engine) reasonSide(l pb.Lit, consIdx int32, out []pb.Lit) []pb.Lit {
	c := e.cons[consIdx]
	pos := e.trailPos[l.Var()]
	for _, t := range c.Terms {
		if t.Lit.Var() == l.Var() {
			continue
		}
		if e.LitValue(t.Lit) == False && e.trailPos[t.Lit.Var()] < pos {
			out = append(out, t.Lit)
		}
	}
	return out
}

// conflictSide returns the falsified literals of the conflicting constraint.
func (e *Engine) conflictSide(consIdx int, out []pb.Lit) []pb.Lit {
	c := e.cons[consIdx]
	for _, t := range c.Terms {
		if e.LitValue(t.Lit) == False {
			out = append(out, t.Lit)
		}
	}
	return out
}

// AnalyzeResult is the outcome of conflict analysis.
type AnalyzeResult struct {
	// Learnt is the learned clause; Learnt[0] is the asserting literal.
	Learnt []pb.Lit
	// BackLevel is the decision level to backtrack to before asserting.
	BackLevel int
	// Unsat indicates the conflict is at (or resolves to) level 0: the
	// formula (plus learned constraints) is unsatisfiable.
	Unsat bool
}

// AnalyzeConstraint performs 1UIP conflict analysis starting from the
// conflicting constraint consIdx.
func (e *Engine) AnalyzeConstraint(consIdx int) AnalyzeResult {
	e.bumpCons(int32(consIdx))
	seed := e.conflictSide(consIdx, nil)
	return e.AnalyzeClause(seed)
}

// AnalyzeClause performs 1UIP conflict analysis starting from a conflicting
// clause: a set of literals all currently false, typically the bound-conflict
// explanation ω_bc = ω_pp ∪ ω_pl of §4. The caller must ensure every literal
// is false and at least one was assigned at the current decision level
// (backtrack to the clause's maximum level first if necessary).
func (e *Engine) AnalyzeClause(seed []pb.Lit) AnalyzeResult {
	curLevel := e.DecisionLevel()
	if curLevel == 0 {
		return AnalyzeResult{Unsat: true}
	}
	var learnt []pb.Lit
	counter := 0
	for v := range e.seen {
		e.seen[v] = false
	}
	bump := make([]pb.Var, 0, 16)

	absorb := func(lits []pb.Lit) {
		for _, q := range lits {
			v := q.Var()
			if e.seen[v] {
				continue
			}
			e.seen[v] = true
			bump = append(bump, v)
			switch {
			case int(e.level[v]) == curLevel:
				counter++
			case e.level[v] > 0:
				learnt = append(learnt, q)
			}
		}
	}
	absorb(seed)
	if counter == 0 {
		// No literal at the current level: the caller should have backtracked
		// to the seed's maximum level first. Treat the whole seed as the
		// learned clause (still sound, possibly weaker).
		return e.clauseFromSeed(seed, bump)
	}

	idx := len(e.trail) - 1
	var p pb.Lit = pb.NoLit
	scratch := make([]pb.Lit, 0, 16)
	for {
		for idx >= 0 && !e.seen[e.trail[idx].Var()] {
			idx--
		}
		if idx < 0 {
			// Should not happen; degrade to seed clause.
			return e.clauseFromSeed(seed, bump)
		}
		p = e.trail[idx]
		idx--
		counter--
		if counter == 0 {
			break
		}
		r := e.reason[p.Var()]
		if r == NoReason {
			// Decision reached with more current-level literals pending:
			// cannot happen in a well-formed trail (only one decision per
			// level); defensive fallback.
			return e.clauseFromSeed(seed, bump)
		}
		e.bumpCons(r)
		scratch = scratch[:0]
		scratch = e.reasonSide(p, r, scratch)
		absorb(scratch)
	}
	// p is the first UIP; the learned clause is learnt ∪ {¬p}.
	asserting := p.Neg()
	out := make([]pb.Lit, 0, len(learnt)+1)
	out = append(out, asserting)
	out = append(out, learnt...)

	// Compute backjump level: maximum level among the non-asserting lits.
	back := 0
	for _, q := range out[1:] {
		if l := int(e.level[q.Var()]); l > back {
			back = l
		}
	}
	e.bumpAll(bump)
	return AnalyzeResult{Learnt: out, BackLevel: back}
}

// clauseFromSeed turns a seed with no current-level literal into an analyze
// result: backtrack below its maximum level and use the seed itself.
func (e *Engine) clauseFromSeed(seed []pb.Lit, bump []pb.Var) AnalyzeResult {
	max1, max2 := -1, -1 // two highest levels (max2 = second occurrence slot)
	var assertLit pb.Lit = pb.NoLit
	for _, q := range seed {
		l := int(e.level[q.Var()])
		if l > max1 {
			max2 = max1
			max1 = l
			assertLit = q
		} else if l > max2 {
			max2 = l
		}
	}
	if max1 <= 0 {
		return AnalyzeResult{Unsat: true}
	}
	if max2 < 0 {
		max2 = 0
	}
	out := make([]pb.Lit, 0, len(seed))
	out = append(out, assertLit)
	for _, q := range seed {
		if q != assertLit && e.level[q.Var()] > 0 {
			out = append(out, q)
		}
	}
	e.bumpAll(bump)
	return AnalyzeResult{Learnt: out, BackLevel: max2}
}

// LearnAndBackjump installs the result of an analysis: backtracks to
// res.BackLevel, adds the learned clause, and asserts its first literal.
// It returns the new constraint index, or -1 when res is Unsat or the learned
// clause is empty.
func (e *Engine) LearnAndBackjump(res AnalyzeResult) int {
	if res.Unsat || len(res.Learnt) == 0 {
		return -1
	}
	e.BacktrackTo(res.BackLevel)
	var idx int
	if len(res.Learnt) >= 2 {
		idx = e.addWatchedClause(res.Learnt)
	} else {
		idx = e.AddCons([]pb.Term{{Coef: 1, Lit: res.Learnt[0]}}, 1, true)
	}
	// Assert the UIP literal with the new clause as reason.
	if e.LitValue(res.Learnt[0]) == Unassigned {
		e.assign(res.Learnt[0], int32(idx))
	}
	e.varDecay()
	return idx
}

// --- VSIDS ---

const (
	varDecayFactor  = 1.0 / 0.95
	consDecayFactor = 1.0 / 0.999
	rescaleLimit    = 1e100
)

func (e *Engine) bumpAll(vars []pb.Var) {
	for _, v := range vars {
		e.BumpVar(v)
	}
}

// BumpVar increases v's VSIDS activity.
func (e *Engine) BumpVar(v pb.Var) {
	e.activity[v] += e.varInc
	if e.activity[v] > rescaleLimit {
		for i := range e.activity {
			e.activity[i] *= 1 / rescaleLimit
		}
		e.varInc *= 1 / rescaleLimit
	}
	e.heap.update(v)
}

func (e *Engine) varDecay() {
	e.varInc *= varDecayFactor
	e.consInc *= consDecayFactor
}

// Activity returns the VSIDS activity of v.
func (e *Engine) Activity(v pb.Var) float64 { return e.activity[v] }

// SeedRandom arms the engine's explicit, per-solver RNG: with probability
// freq each branch decision picks a random unassigned variable instead of
// the VSIDS maximum. freq <= 0 disables randomization (the default). Runs
// are reproducible for a fixed (seed, freq): this is the portfolio's
// diversification knob, seeded per member.
func (e *Engine) SeedRandom(seed int64, freq float64) {
	if freq <= 0 {
		e.rng, e.randFreq = nil, 0
		return
	}
	e.rng = rand.New(rand.NewSource(seed))
	e.randFreq = freq
}

// PickBranchVar returns the unassigned variable with maximal VSIDS activity,
// or -1 when all variables are assigned. With SeedRandom armed, a fraction
// of picks is uniformly random over unassigned variables instead.
func (e *Engine) PickBranchVar() pb.Var {
	if e.rng != nil && e.rng.Float64() < e.randFreq {
		// A few random probes; on repeated misses fall through to VSIDS
		// (the heap pop below). The probed variable stays in the heap —
		// pops skip assigned variables anyway.
		for i := 0; i < 8; i++ {
			v := pb.Var(e.rng.Intn(e.nVars))
			if e.value[v] == Unassigned {
				e.Stats.RandomDecisions++
				return v
			}
		}
	}
	for e.heap.size() > 0 {
		v := e.heap.pop()
		if e.value[v] == Unassigned {
			return v
		}
	}
	return -1
}

// PreferredPhase returns the saved phase of v (False initially, which is the
// cheapest polarity for non-negative costs).
func (e *Engine) PreferredPhase(v pb.Var) Value { return e.phase[v] }

// SetPhase overrides the saved phase (used by LP-guided branching).
func (e *Engine) SetPhase(v pb.Var, val Value) { e.phase[v] = val }

// --- Solution & reduced-problem access ---

// Values returns the current complete assignment as booleans; unassigned
// variables default to false (the zero-cost polarity). Only meaningful when
// every problem constraint is satisfied.
func (e *Engine) Values() []bool {
	out := make([]bool, e.nVars)
	for v := 0; v < e.nVars; v++ {
		out[v] = e.value[v] == True
	}
	return out
}

// UnsatisfiedCons calls fn for every problem constraint not yet satisfied by
// true literals, passing the constraint index and residual degree
// (Degree − trueSum > 0). Learned constraints are skipped: lower bounds must
// be estimated on the problem itself (learned bound clauses depend on the
// incumbent and would make explanations circular).
func (e *Engine) UnsatisfiedCons(fn func(idx int, c *Cons, residual int64)) {
	for i, c := range e.cons {
		if c.removed || c.Learned || c.Satisfied() {
			continue
		}
		fn(i, c, c.Degree-c.trueSum)
	}
}

// CheckInvariants verifies counter consistency (test hook); it recomputes
// watchSum/trueSum from scratch and compares.
func (e *Engine) CheckInvariants() error {
	unsat := 0
	for i, c := range e.cons {
		if c.removed || c.watched {
			continue
		}
		var ws, ts int64
		for _, t := range c.Terms {
			switch e.LitValue(t.Lit) {
			case True:
				ws += t.Coef
				ts += t.Coef
			case Unassigned:
				ws += t.Coef
			}
		}
		if ws != c.watchSum || ts != c.trueSum {
			return fmt.Errorf("cons %d: watchSum=%d(want %d) trueSum=%d(want %d)",
				i, c.watchSum, ws, c.trueSum, ts)
		}
		if !c.Learned && ts < c.Degree {
			unsat++
		}
	}
	if unsat != e.numUnsatisfied {
		return fmt.Errorf("numUnsatisfied=%d want %d", e.numUnsatisfied, unsat)
	}
	return nil
}

// --- binary heap ordered by activity ---

type varHeap struct {
	act     []float64
	heap    []pb.Var
	indices []int32 // position in heap, -1 if absent
}

func newVarHeap(act []float64) *varHeap {
	h := &varHeap{act: act, indices: make([]int32, len(act))}
	for i := range h.indices {
		h.indices[i] = -1
	}
	return h
}

func (h *varHeap) size() int { return len(h.heap) }

func (h *varHeap) less(i, j int) bool { return h.act[h.heap[i]] > h.act[h.heap[j]] }

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.indices[h.heap[i]] = int32(i)
	h.indices[h.heap[j]] = int32(j)
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *varHeap) push(v pb.Var) {
	if h.indices[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = int32(len(h.heap) - 1)
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pushIfAbsent(v pb.Var) { h.push(v) }

func (h *varHeap) pop() pb.Var {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.indices[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v
}

func (h *varHeap) update(v pb.Var) {
	if i := h.indices[v]; i >= 0 {
		h.up(int(i))
		h.down(int(h.indices[v]))
	}
}

// MaxInt64 re-exported bound used by callers sizing budgets.
const MaxInt64 = math.MaxInt64
