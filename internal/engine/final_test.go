package engine

import (
	"testing"

	"repro/internal/pb"
)

// litSet collects a core into a map for order-independent comparison.
func litSet(lits []pb.Lit) map[pb.Lit]bool {
	m := make(map[pb.Lit]bool, len(lits))
	for _, l := range lits {
		m[l] = true
	}
	return m
}

func TestAnalyzeFinalPropagationChain(t *testing.T) {
	// x0 → x1 → ¬x3. Assume x0 and (independently) x2; x3 is then falsified
	// through the chain, and the core must name x0 but not the irrelevant
	// decision x2.
	p := mkProblem(t, 4, func(p *pb.Problem) {
		_ = p.AddClause(pb.NegLit(0), pb.PosLit(1))
		_ = p.AddClause(pb.NegLit(1), pb.NegLit(3))
	})
	e := New(p)
	e.Decide(pb.PosLit(0))
	if confl := e.Propagate(); confl != -1 {
		t.Fatalf("unexpected conflict %d", confl)
	}
	e.Decide(pb.PosLit(2))
	if confl := e.Propagate(); confl != -1 {
		t.Fatalf("unexpected conflict %d", confl)
	}
	if e.LitValue(pb.PosLit(3)) != False {
		t.Fatalf("x3 should be propagated false")
	}
	core := e.AnalyzeFinal(pb.PosLit(3))
	got := litSet(core)
	if len(got) != 2 || !got[pb.PosLit(3)] || !got[pb.PosLit(0)] {
		t.Fatalf("core=%v want {x3, x0}", core)
	}
}

func TestAnalyzeFinalRootLevel(t *testing.T) {
	// Unit clause ¬x0 at the root: the core for assumption x0 is {x0} alone.
	p := mkProblem(t, 2, func(p *pb.Problem) {
		_ = p.AddClause(pb.NegLit(0))
	})
	e := New(p)
	if e.SeedUnits() < 0 {
		t.Fatal("seed units should not conflict")
	}
	if confl := e.Propagate(); confl != -1 {
		t.Fatalf("unexpected conflict %d", confl)
	}
	if e.LitValue(pb.PosLit(0)) != False {
		t.Fatal("x0 should be false at the root")
	}
	core := e.AnalyzeFinal(pb.PosLit(0))
	if len(core) != 1 || core[0] != pb.PosLit(0) {
		t.Fatalf("core=%v want {x0}", core)
	}
}

func TestAnalyzeFinalContradictoryAssumptions(t *testing.T) {
	// Assume x0, then ask why ¬x0 fails: both polarities belong to the core.
	p := mkProblem(t, 2, func(p *pb.Problem) {
		_ = p.AddClause(pb.PosLit(0), pb.PosLit(1)) // keep x0 constrained
	})
	e := New(p)
	e.Decide(pb.PosLit(0))
	if confl := e.Propagate(); confl != -1 {
		t.Fatalf("unexpected conflict %d", confl)
	}
	core := e.AnalyzeFinal(pb.NegLit(0))
	got := litSet(core)
	if len(got) != 2 || !got[pb.NegLit(0)] || !got[pb.PosLit(0)] {
		t.Fatalf("core=%v want {¬x0, x0}", core)
	}
}

func TestAnalyzeFinalPBChain(t *testing.T) {
	// A PB (non-clausal) propagation feeding the final conflict:
	// 2x0 + x1 + x2 ≥ 3 under ¬x1 forces x0 (and x2); clause ¬x0 ∨ ¬x3
	// then falsifies assumption x3. Core: {x3, ¬x1}.
	p := mkProblem(t, 4, func(p *pb.Problem) {
		if err := p.AddConstraint([]pb.Term{
			{Coef: 2, Lit: pb.PosLit(0)},
			{Coef: 1, Lit: pb.PosLit(1)},
			{Coef: 1, Lit: pb.PosLit(2)},
		}, pb.GE, 3); err != nil {
			t.Fatal(err)
		}
		_ = p.AddClause(pb.NegLit(0), pb.NegLit(3))
	})
	e := New(p)
	e.Decide(pb.NegLit(1))
	if confl := e.Propagate(); confl != -1 {
		t.Fatalf("unexpected conflict %d", confl)
	}
	if e.LitValue(pb.PosLit(3)) != False {
		t.Fatal("x3 should be propagated false")
	}
	core := e.AnalyzeFinal(pb.PosLit(3))
	got := litSet(core)
	if len(got) != 2 || !got[pb.PosLit(3)] || !got[pb.NegLit(1)] {
		t.Fatalf("core=%v want {x3, ¬x1}", core)
	}
}
