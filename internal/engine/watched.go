// Two-watched-literal propagation for learned clauses (the classic MiniSat
// scheme). Problem constraints and learned pseudo-Boolean cuts stay on the
// counter-based path — they need satisfaction counters for solution
// detection and reduced-problem extraction — but learned *clauses* need
// neither: they exist only to prune, so they skip the occurrence lists
// entirely. Backtracking costs nothing for watched clauses (watches remain
// valid), which removes the learned-clause share of the two hottest loops
// (assign and BacktrackTo).
package engine

import "repro/internal/pb"

// addWatchedClause installs a learned clause of length ≥ 2 under the
// two-watched-literal scheme and returns its constraint index. lits[0] must
// be the asserting literal (unassigned after the backjump) and the rest
// currently false; the second watch is placed on a literal from the highest
// remaining decision level so it unassigns last.
func (e *Engine) addWatchedClause(lits []pb.Lit) int {
	terms := make([]pb.Term, len(lits))
	for i, l := range lits {
		terms[i] = pb.Term{Coef: 1, Lit: l}
	}
	// Second watch: the falsified literal with the highest level.
	best := 1
	for k := 2; k < len(terms); k++ {
		if e.level[terms[k].Lit.Var()] > e.level[terms[best].Lit.Var()] {
			best = k
		}
	}
	terms[1], terms[best] = terms[best], terms[1]

	c := &Cons{Terms: terms, Degree: 1, Learned: true, watched: true, maxCoef: 1}
	idx := int32(len(e.cons))
	e.cons = append(e.cons, c)
	e.Stats.Learned++
	e.watchList[terms[0].Lit] = append(e.watchList[terms[0].Lit], idx)
	e.watchList[terms[1].Lit] = append(e.watchList[terms[1].Lit], idx)
	return int(idx)
}

// propagateWatches processes the clauses watching literal q, which has just
// become false. Returns the index of a conflicting clause, or -1.
func (e *Engine) propagateWatches(q pb.Lit) int {
	list := e.watchList[q]
	kept := list[:0]
	for li := 0; li < len(list); li++ {
		ci := list[li]
		c := e.cons[ci]
		if c.removed {
			continue // drop the entry
		}
		// Normalize: Terms[1] is the falsified watch.
		if c.Terms[0].Lit == q {
			c.Terms[0], c.Terms[1] = c.Terms[1], c.Terms[0]
		}
		other := c.Terms[0].Lit
		if e.LitValue(other) == True {
			kept = append(kept, ci) // satisfied: keep watching q
			continue
		}
		// Search for a replacement watch.
		moved := false
		for k := 2; k < len(c.Terms); k++ {
			if e.LitValue(c.Terms[k].Lit) != False {
				c.Terms[1], c.Terms[k] = c.Terms[k], c.Terms[1]
				e.watchList[c.Terms[1].Lit] = append(e.watchList[c.Terms[1].Lit], ci)
				moved = true
				break
			}
		}
		if moved {
			continue // entry moves to the new watch's list
		}
		// No replacement: the clause is unit on `other`, or conflicting.
		kept = append(kept, ci)
		if e.LitValue(other) == False {
			// Conflict: retain the remaining entries and report.
			kept = append(kept, list[li+1:]...)
			e.watchList[q] = kept
			e.Stats.Conflicts++
			return int(ci)
		}
		e.assign(other, ci)
	}
	e.watchList[q] = kept
	return -1
}

// purgeWatchLists drops entries of removed clauses (called by ReduceDB).
func (e *Engine) purgeWatchLists() {
	for li := range e.watchList {
		lst := e.watchList[li][:0]
		for _, ci := range e.watchList[li] {
			if !e.cons[ci].removed {
				lst = append(lst, ci)
			}
		}
		e.watchList[li] = lst
	}
}
