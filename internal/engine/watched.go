// Two-watched-literal propagation for learned clauses (the classic MiniSat
// scheme). Problem constraints and learned pseudo-Boolean cuts stay on the
// counter-based path — they need satisfaction counters for solution
// detection and reduced-problem extraction — but learned *clauses* need
// neither: they exist only to prune, so they skip the occurrence lists
// entirely. Backtracking costs nothing for watched clauses (watches remain
// valid), which removes the learned-clause share of the two hottest loops
// (assign and BacktrackTo).
//
// Watched clauses live in the same header/arena store as counter-based
// constraints (flagWatched): their literal span is mutated in place when a
// watch moves (positions 0 and 1 are the watches), and their coefficients
// are all 1, kept in the coefficient arena so ReduceDB compaction can slide
// every constraint span uniformly.
package engine

import "repro/internal/pb"

// internClause copies lits into the arenas as a watched learned clause
// header (no watches registered yet) and returns its index. The input slice
// is copied, never retained: imported clauses cross goroutines, and a
// publisher mutating its buffer after the call must not reach this store.
func (e *Engine) internClause(lits []pb.Lit) int32 {
	h := consHdr{
		off:    int32(len(e.lits)),
		n:      int32(len(lits)),
		flags:  flagLearned | flagWatched,
		degree: 1, maxCoef: 1,
	}
	e.lits = append(e.lits, lits...)
	for range lits {
		e.coefs = append(e.coefs, 1)
	}
	idx := e.appendHdr(h)
	e.Stats.Learned++
	return idx
}

// watchBoth registers clause idx on its first two span literals.
func (e *Engine) watchBoth(idx int32) {
	h := &e.hdrs[idx]
	e.watchList[e.lits[h.off]] = append(e.watchList[e.lits[h.off]], idx)
	e.watchList[e.lits[h.off+1]] = append(e.watchList[e.lits[h.off+1]], idx)
}

// addWatchedClause installs a learned clause of length ≥ 2 under the
// two-watched-literal scheme and returns its constraint index. lits[0] must
// be the asserting literal (unassigned after the backjump) and the rest
// currently false; the second watch is placed on a literal from the highest
// remaining decision level so it unassigns last. The input is not mutated.
func (e *Engine) addWatchedClause(lits []pb.Lit) int {
	// Second watch: the falsified literal with the highest level.
	best := 1
	for k := 2; k < len(lits); k++ {
		if e.level[lits[k].Var()] > e.level[lits[best].Var()] {
			best = k
		}
	}
	idx := e.internClause(lits)
	if best != 1 {
		// Swap inside the interned span (the caller's slice stays untouched).
		h := &e.hdrs[idx]
		ls := e.lits[h.off : h.off+h.n]
		ls[1], ls[best] = ls[best], ls[1]
	}
	e.watchBoth(idx)
	return int(idx)
}

// propagateWatches processes the clauses watching literal q, which has just
// become false. Returns the index of a conflicting clause, or -1.
func (e *Engine) propagateWatches(q pb.Lit) int {
	list := e.watchList[q]
	kept := list[:0]
	for li := 0; li < len(list); li++ {
		ci := list[li]
		h := &e.hdrs[ci]
		if h.flags&flagRemoved != 0 {
			continue // drop the entry
		}
		ls := e.lits[h.off : h.off+h.n]
		// Normalize: ls[1] is the falsified watch.
		if ls[0] == q {
			ls[0], ls[1] = ls[1], ls[0]
		}
		other := ls[0]
		if e.LitValue(other) == True {
			kept = append(kept, ci) // satisfied: keep watching q
			continue
		}
		// Search for a replacement watch.
		moved := false
		for k := 2; k < len(ls); k++ {
			if e.LitValue(ls[k]) != False {
				ls[1], ls[k] = ls[k], ls[1]
				e.watchList[ls[1]] = append(e.watchList[ls[1]], ci)
				moved = true
				break
			}
		}
		if moved {
			continue // entry moves to the new watch's list
		}
		// No replacement: the clause is unit on `other`, or conflicting.
		kept = append(kept, ci)
		if e.LitValue(other) == False {
			// Conflict: retain the remaining entries and report.
			kept = append(kept, list[li+1:]...)
			e.watchList[q] = kept
			e.Stats.Conflicts++
			return int(ci)
		}
		e.assign(other, ci)
	}
	e.watchList[q] = kept
	return -1
}

// purgeWatchLists drops entries of removed clauses (called by ReduceDB).
func (e *Engine) purgeWatchLists() {
	for li := range e.watchList {
		lst := e.watchList[li][:0]
		for _, ci := range e.watchList[li] {
			if e.hdrs[ci].flags&flagRemoved == 0 {
				lst = append(lst, ci)
			}
		}
		e.watchList[li] = lst
	}
}
