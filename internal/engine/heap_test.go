package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pb"
)

// Property (testing/quick): the variable heap always pops an unpopped
// variable of maximal activity, under arbitrary interleavings of pushes,
// pops, and activity updates.
func TestVarHeapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		act := make([]float64, n)
		h := newVarHeap(act)
		inHeap := map[pb.Var]bool{}
		for v := 0; v < n; v++ {
			h.push(pb.Var(v))
			inHeap[pb.Var(v)] = true
		}
		for op := 0; op < 200; op++ {
			switch rng.Intn(3) {
			case 0: // bump a variable and update
				v := pb.Var(rng.Intn(n))
				act[v] += rng.Float64() * 10
				h.update(v)
			case 1: // push (idempotent when present)
				v := pb.Var(rng.Intn(n))
				h.pushIfAbsent(v)
				inHeap[v] = true
			case 2: // pop must return a max-activity member
				if h.size() == 0 {
					continue
				}
				got := h.pop()
				if !inHeap[got] {
					return false
				}
				for v, in := range inHeap {
					if in && act[v] > act[got] {
						return false
					}
				}
				inHeap[got] = false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): cpCons.addScaled preserves the semantics of the
// linear combination on every full assignment: for all x,
// lhs(cp') − degree' == lhs(cp) − degree + λ·(lhs(other) − degree_other)
// is too strong after cancellation (constants shift both sides), but the
// implication "x satisfies both inputs ⇒ x satisfies the combination" must
// hold (cutting-plane addition is sound).
func TestAddScaledSoundnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		mk := func() *cpCons {
			cp := &cpCons{coef: map[pb.Lit]int64{}, degree: int64(rng.Intn(8))}
			for v := 0; v < n; v++ {
				if rng.Intn(2) == 0 {
					cp.coef[pb.MkLit(pb.Var(v), rng.Intn(2) == 0)] = int64(1 + rng.Intn(4))
				}
			}
			return cp
		}
		a, b := mk(), mk()
		lambda := int64(1 + rng.Intn(3))
		sum := &cpCons{coef: map[pb.Lit]int64{}, degree: a.degree}
		for l, c := range a.coef {
			sum.coef[l] = c
		}
		if !sum.addScaled(b, lambda) {
			return true // overflow path: nothing to check
		}
		eval := func(cp *cpCons, mask int) bool {
			var lhs int64
			for l, c := range cp.coef {
				v := l.Var()
				val := mask&(1<<v) != 0
				if l.Eval(val) {
					lhs += c
				}
			}
			return lhs >= cp.degree
		}
		for mask := 0; mask < 1<<n; mask++ {
			if eval(a, mask) && eval(b, mask) && !eval(sum, mask) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): divideCeil and saturate preserve every model of
// the constraint (both are sound cutting-plane rules).
func TestDivideSaturateSoundnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		cp := &cpCons{coef: map[pb.Lit]int64{}, degree: int64(1 + rng.Intn(9))}
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				cp.coef[pb.MkLit(pb.Var(v), rng.Intn(2) == 0)] = int64(1 + rng.Intn(6))
			}
		}
		clone := func(c *cpCons) *cpCons {
			out := &cpCons{coef: map[pb.Lit]int64{}, degree: c.degree}
			for l, a := range c.coef {
				out.coef[l] = a
			}
			return out
		}
		div := clone(cp)
		div.divideCeil(int64(1 + rng.Intn(4)))
		sat := clone(cp)
		sat.saturate()
		eval := func(c *cpCons, mask int) bool {
			var lhs int64
			for l, a := range c.coef {
				if l.Eval(mask&(1<<l.Var()) != 0) {
					lhs += a
				}
			}
			return lhs >= c.degree
		}
		for mask := 0; mask < 1<<n; mask++ {
			if eval(cp, mask) && (!eval(div, mask) || !eval(sat, mask)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
