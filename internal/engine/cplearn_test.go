package engine

import (
	"math/rand"
	"testing"

	"repro/internal/pb"
)

func TestCPConsWeakenDivideSaturate(t *testing.T) {
	p := pb.NewProblem(4)
	e := New(p)
	// 3x0 + 2x1 + 2x2 + 1x3 >= 5 with x1 false (decide ¬x1).
	c := Cons{
		Lits:   []pb.Lit{pb.PosLit(0), pb.PosLit(1), pb.PosLit(2), pb.PosLit(3)},
		Coefs:  []int64{3, 2, 2, 1},
		Degree: 5,
	}
	e.Decide(pb.NegLit(1))
	cp := newCPCons(c)
	// slack = (3+2+1) − 5 = 1 (x1 false).
	if s := cp.slack(e); s != 1 {
		t.Fatalf("slack=%d want 1", s)
	}
	// Weaken everything non-false except x0: drops x2 (2) and x3 (1).
	cp.weakenExcept(e, pb.PosLit(0))
	if cp.degree != 2 || len(cp.coef) != 2 {
		t.Fatalf("after weaken: %+v", cp)
	}
	// Divide by 3 (x0's coefficient): ceil(3/3)x0 + ceil(2/3)x1 >= ceil(2/3).
	cp.divideCeil(3)
	if cp.coef[pb.PosLit(0)] != 1 || cp.coef[pb.PosLit(1)] != 1 || cp.degree != 1 {
		t.Fatalf("after divide: %+v", cp)
	}
	cp.saturate()
	if cp.coef[pb.PosLit(0)] != 1 {
		t.Fatalf("after saturate: %+v", cp)
	}
}

func TestCPConsAddScaledCancels(t *testing.T) {
	cp := &cpCons{coef: map[pb.Lit]int64{pb.NegLit(0): 2, pb.PosLit(1): 1}, degree: 2}
	other := &cpCons{coef: map[pb.Lit]int64{pb.PosLit(0): 1, pb.PosLit(2): 1}, degree: 1}
	if !cp.addScaled(other, 2) {
		t.Fatal("overflow flagged")
	}
	// 2¬x0 cancels against 2·1·x0 entirely: degree = 2 + 2·1 − 2 = 2.
	if _, ok := cp.coef[pb.NegLit(0)]; ok {
		t.Fatalf("¬x0 not cancelled: %+v", cp)
	}
	if _, ok := cp.coef[pb.PosLit(0)]; ok {
		t.Fatalf("x0 should be fully cancelled: %+v", cp)
	}
	if cp.degree != 2 || cp.coef[pb.PosLit(1)] != 1 || cp.coef[pb.PosLit(2)] != 2 {
		t.Fatalf("got %+v", cp)
	}
}

// The derived constraint must be falsified by the conflicting assignment
// and must never exclude a model of the problem constraints. Conflicts are
// harvested from complete CDCL runs on random instances, where they occur
// by the hundreds; every derivation is checked against the full model set.
func TestCuttingPlaneSoundOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	tested := 0
	for iter := 0; iter < 400; iter++ {
		// Phase-transition random 3-SAT plus a couple of PB budget rows:
		// conflict-rich searches whose reasons mix clauses and genuine PB
		// constraints.
		n := 8 + rng.Intn(4)
		p := pb.NewProblem(n)
		m := int(4.3 * float64(n))
		for i := 0; i < m; i++ {
			lits := make([]pb.Lit, 3)
			for k := range lits {
				lits[k] = pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0)
			}
			_ = p.AddClause(lits...)
		}
		for i := 0; i < 2; i++ {
			terms := make([]pb.Term, 4)
			var sum int64
			for k := range terms {
				c := int64(1 + rng.Intn(4))
				sum += c
				terms[k] = pb.Term{Coef: c, Lit: pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0)}
			}
			_ = p.AddConstraint(terms, pb.GE, 1+rng.Int63n(sum-1))
		}
		// Precompute the model set.
		var models [][]bool
		for mask := 0; mask < 1<<n; mask++ {
			vals := make([]bool, n)
			for v := 0; v < n; v++ {
				vals[v] = mask&(1<<v) != 0
			}
			if p.Feasible(vals) {
				models = append(models, vals)
			}
		}
		// Full CDCL run; validate a derivation at every conflict.
		e := New(p)
		if e.SeedUnits() < 0 {
			continue
		}
		for conflicts := 0; conflicts < 200; {
			confl := e.Propagate()
			if confl < 0 {
				if e.NumUnsatisfied() == 0 {
					break
				}
				v := e.PickBranchVar()
				if v < 0 {
					break
				}
				e.Decide(pb.MkLit(v, e.PreferredPhase(v) == False))
				continue
			}
			conflicts++
			terms, degree := e.AnalyzeCuttingPlane(confl)
			if terms != nil {
				tested++
				learned := &pb.Constraint{Terms: terms, Degree: degree}
				var ws int64
				for _, tm := range terms {
					if e.LitValue(tm.Lit) != False {
						ws += tm.Coef
					}
				}
				if ws >= degree {
					t.Fatalf("iter %d: derived constraint not conflicting (slack %d)", iter, ws-degree)
				}
				for _, vals := range models {
					if !learned.Eval(vals) {
						t.Fatalf("iter %d: derived constraint %v >= %d excludes model %v",
							iter, terms, degree, vals)
					}
				}
			}
			res := e.AnalyzeConstraint(confl)
			if res.Unsat {
				break
			}
			if e.LearnAndBackjump(res) < 0 {
				break
			}
		}
	}
	if tested < 200 {
		t.Fatalf("only %d derivations exercised; generator too easy", tested)
	}
}

func TestCuttingPlaneProducesNonClausal(t *testing.T) {
	// A conflict involving genuine PB constraints should (at least
	// sometimes) derive a constraint with degree > 1 — the whole point of
	// PB learning. Count occurrences over a batch.
	rng := rand.New(rand.NewSource(17))
	nonClausal := 0
	for iter := 0; iter < 400; iter++ {
		n := 4 + rng.Intn(4)
		p := pb.NewProblem(n)
		for i := 0; i < 3+rng.Intn(6); i++ {
			nt := 2 + rng.Intn(3)
			terms := make([]pb.Term, nt)
			for k := range terms {
				terms[k] = pb.Term{Coef: int64(2 + rng.Intn(3)), Lit: pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0)}
			}
			_ = p.AddConstraint(terms, pb.GE, int64(3+rng.Intn(5)))
		}
		e := New(p)
		if e.SeedUnits() < 0 || e.Propagate() >= 0 {
			continue
		}
		confl := -1
		for confl < 0 {
			var free []pb.Var
			for v := 0; v < n; v++ {
				if e.Value(pb.Var(v)) == Unassigned {
					free = append(free, pb.Var(v))
				}
			}
			if len(free) == 0 {
				break
			}
			e.Decide(pb.MkLit(free[rng.Intn(len(free))], true))
			confl = e.Propagate()
		}
		if confl < 0 {
			continue
		}
		terms, degree := e.AnalyzeCuttingPlane(confl)
		if terms == nil {
			continue
		}
		if degree > 1 {
			nonClausal++
		}
	}
	if nonClausal == 0 {
		t.Fatal("cutting-plane analysis never derived a non-clausal constraint")
	}
}
