// Trail-delta notifications: the engine already maintains, incrementally and
// in O(1) per assignment, exactly the quantities a reduced-problem builder
// needs (per-constraint trueSum/watchSum and the satisfied/unsatisfied
// transition of every problem constraint). This file exposes those
// transitions to a single registered watcher so downstream state — the
// persistent bounds.Reducer, in particular — can be *maintained* from trail
// deltas instead of being recomputed from a full constraint-store scan at
// every search node.
//
// Design notes:
//
//   - Notifications fire only for problem (non-learned) constraints: learned
//     clauses and incumbent cuts never participate in lower-bound reduction
//     (their presence would make bound explanations circular), and skipping
//     them keeps the hook entirely off the clause-learning hot path.
//   - The hooks piggyback on the existing numUnsatisfied bookkeeping, so a
//     registered watcher adds one predictable nil-check per satisfaction
//     transition — not per assignment.
//   - Backtracking, restarts and ReduceDB need no special casing: BacktrackTo
//     fires the inverse transitions in reverse trail order, and ReduceDB only
//     ever removes learned constraints.
package engine

// ConsWatcher observes satisfaction transitions of problem (non-learned)
// constraints. Implementations must be cheap (O(1)): the callbacks run inside
// the propagation and backtracking loops.
type ConsWatcher interface {
	// ConsSatisfied fires when problem constraint idx becomes satisfied by
	// true literals alone (trueSum crossed its degree upward).
	ConsSatisfied(idx int)
	// ConsUnsatisfied fires when problem constraint idx stops being satisfied
	// (a true literal was unassigned during backtracking, or its degree was
	// tightened in place past the current trueSum).
	ConsUnsatisfied(idx int)
	// ConsAdded fires when a new problem constraint enters the store;
	// satisfied reports its initial satisfaction state.
	ConsAdded(idx int, satisfied bool)
}

// SetConsWatcher registers w as the engine's constraint watcher (nil
// unregisters). At most one watcher is supported; the caller owning the
// search loop decides who observes. The watcher receives only transitions
// that happen after registration — a new watcher should snapshot the current
// satisfaction state first (see bounds.NewReducer).
func (e *Engine) SetConsWatcher(w ConsWatcher) { e.consWatcher = w }

// ConsWatcherAttached reports whether a watcher is currently registered.
func (e *Engine) ConsWatcherAttached() bool { return e.consWatcher != nil }
