// Batched trail-delta notifications: the engine already maintains,
// incrementally and in O(1) per assignment, exactly the quantities a
// reduced-problem builder needs (per-constraint trueSum/watchSum and the
// satisfied/unsatisfied transition of every problem constraint). This file
// exposes those transitions to a single registered watcher so downstream
// state — the persistent bounds.Reducer, in particular — can be *maintained*
// from trail deltas instead of being recomputed from a full constraint-store
// scan at every search node.
//
// Design notes:
//
//   - Notifications fire only for problem (non-learned) constraints: learned
//     clauses and incumbent cuts never participate in lower-bound reduction
//     (their presence would make bound explanations circular), and skipping
//     them keeps the hook entirely off the clause-learning hot path.
//   - Transitions are *coalesced*: assign/BacktrackTo/UpdateDegree only mark
//     the constraint dirty (one branch + one append per first transition,
//     nothing per repeat), and FlushConsDeltas delivers the net changes in a
//     single ConsWave call. A constraint that flips satisfied→unsatisfied→
//     satisfied between flushes nets out and is never reported, so a whole
//     propagation wave (or a propagate + backjump + re-propagate sequence)
//     costs the watcher one callback, not one per assignment.
//   - The engine never flushes on its own: consumers pull the wave when they
//     need a current view (bounds.Reducer flushes at the top of Reduce and
//     ActiveCount). Between flushes the watcher's mirror may lag the engine;
//     the dirty set is deduplicated, so the lag is bounded by the constraint
//     count, not the assignment count.
//   - Backtracking, restarts and ReduceDB need no special casing: BacktrackTo
//     marks the inverse transitions, and ReduceDB only ever removes learned
//     constraints (arena compaction moves term spans, never indices).
package engine

// ConsWatcher observes satisfaction transitions of problem (non-learned)
// constraints as coalesced per-wave deltas.
type ConsWatcher interface {
	// ConsWave delivers the net satisfaction transitions since the previous
	// flush: satisfied lists problem constraints that became satisfied by
	// true literals alone, unsatisfied those that stopped being satisfied
	// (a true literal was unassigned during backtracking, or the degree was
	// tightened in place past the current trueSum). The slices alias engine
	// scratch buffers: they are valid only for the duration of the call and
	// are disjoint (a constraint nets out at most one way per wave).
	ConsWave(satisfied, unsatisfied []int32)
	// ConsAdded fires immediately when a new problem constraint enters the
	// store; satisfied reports its initial satisfaction state. (Adds are not
	// batched: the watcher must know the store grew before the next wave.)
	ConsAdded(idx int, satisfied bool)
}

// SetConsWatcher registers w as the engine's constraint watcher (nil
// unregisters, discarding any unflushed transitions). At most one watcher is
// supported; the caller owning the search loop decides who observes. The
// watcher receives only transitions that happen after registration — a new
// watcher should snapshot the current satisfaction state first (see
// bounds.NewReducer).
func (e *Engine) SetConsWatcher(w ConsWatcher) {
	e.consWatcher = w
	e.dirty = e.dirty[:0]
	if w == nil {
		return
	}
	// Baseline the per-constraint notification state so the first flush
	// reports transitions relative to "now".
	for i := range e.hdrs {
		h := &e.hdrs[i]
		if !h.learned() && h.satisfied() {
			e.satState[i] = stateCur | stateLast
		} else {
			e.satState[i] = 0
		}
	}
}

// ConsWatcherAttached reports whether a watcher is currently registered.
func (e *Engine) ConsWatcherAttached() bool { return e.consWatcher != nil }

// FlushConsDeltas computes the net satisfaction transitions of all dirty
// problem constraints and, when any survive coalescing, delivers them to the
// registered watcher in one ConsWave call. Zero-allocation in steady state:
// the satisfied/unsatisfied slices are reused scratch buffers. No-op without
// a watcher or without pending transitions.
func (e *Engine) FlushConsDeltas() {
	if len(e.dirty) == 0 {
		return
	}
	if e.consWatcher == nil {
		e.dirty = e.dirty[:0]
		return
	}
	// The scan touches only the dense satState byte array — noteTransition
	// recorded the current satisfaction there, so no header is re-read.
	sat := e.satBuf[:0]
	unsat := e.unsatBuf[:0]
	for _, ci := range e.dirty {
		s := e.satState[ci] &^ stateDirty
		if (s&stateCur != 0) == (s&stateLast != 0) {
			e.satState[ci] = s
			continue // netted out within the wave
		}
		e.satState[ci] = s ^ stateLast
		if s&stateCur != 0 {
			sat = append(sat, ci)
		} else {
			unsat = append(unsat, ci)
		}
	}
	e.dirty = e.dirty[:0]
	e.satBuf, e.unsatBuf = sat, unsat
	if len(sat)+len(unsat) > 0 {
		e.consWatcher.ConsWave(sat, unsat)
	}
}
