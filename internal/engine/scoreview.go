// Read-only scoring views: the engine's struct-of-arrays constraint layout,
// exported as an immutable snapshot for consumers that score assignments
// without running the propagation machinery — today the stochastic
// local-search member (internal/ls), whose make/break flip deltas want the
// same cache-friendly flat arenas the propagation wave iterates, but none of
// the watch/trail state.
package engine

import "repro/internal/pb"

// VarRef locates one occurrence of a variable inside ScoreRows: the row it
// appears in and the signed change to that row's true-literal coefficient sum
// when the variable flips false→true (+coef for a positive literal, −coef
// for a negated one). Flipping true→false applies −Delta.
type VarRef struct {
	Row   int32
	Delta int64
}

// ScoreRows is an immutable, flattened snapshot of a problem's normalized
// constraint rows in the engine's SoA layout:
//
//   - Off/Lits/Coefs/Degree: CSR by row, exactly the arena layout the
//     engine's propagation loop walks (row i's terms are Lits/Coefs in
//     [Off[i], Off[i+1]));
//   - VarOff/VarRefs: CSR by variable — every row a variable occurs in,
//     with the precomputed signed lhs delta of flipping it to true.
//
// A row with true-coefficient sum lhs is satisfied iff lhs ≥ Degree[i];
// max(0, Degree[i]−lhs) is its violation amount (the quantity local-search
// scoring weighs). The snapshot aliases nothing in the source problem and is
// safe for concurrent read-only use.
type ScoreRows struct {
	NumVars int

	Off    []int32
	Lits   []pb.Lit
	Coefs  []int64
	Degree []int64

	VarOff  []int32
	VarRefs []VarRef
}

// NewScoreRows builds the scoring snapshot from a problem in normal form.
func NewScoreRows(p *pb.Problem) *ScoreRows {
	nRows := len(p.Constraints)
	r := &ScoreRows{
		NumVars: p.NumVars,
		Off:     make([]int32, nRows+1),
		Degree:  make([]int64, nRows),
		VarOff:  make([]int32, p.NumVars+1),
	}
	total := 0
	for _, c := range p.Constraints {
		total += len(c.Terms)
	}
	r.Lits = make([]pb.Lit, 0, total)
	r.Coefs = make([]int64, 0, total)

	counts := make([]int32, p.NumVars)
	for i, c := range p.Constraints {
		r.Off[i] = int32(len(r.Lits))
		r.Degree[i] = c.Degree
		for _, t := range c.Terms {
			r.Lits = append(r.Lits, t.Lit)
			r.Coefs = append(r.Coefs, t.Coef)
			counts[t.Lit.Var()]++
		}
	}
	r.Off[nRows] = int32(len(r.Lits))

	for v := 0; v < p.NumVars; v++ {
		r.VarOff[v+1] = r.VarOff[v] + counts[v]
	}
	r.VarRefs = make([]VarRef, len(r.Lits))
	next := make([]int32, p.NumVars)
	copy(next, r.VarOff[:p.NumVars])
	for i := range p.Constraints {
		for k := r.Off[i]; k < r.Off[i+1]; k++ {
			l := r.Lits[k]
			v := l.Var()
			d := r.Coefs[k]
			if l.IsNeg() {
				d = -d
			}
			r.VarRefs[next[v]] = VarRef{Row: int32(i), Delta: d}
			next[v]++
		}
	}
	return r
}

// NumRows returns the number of rows in the snapshot.
func (r *ScoreRows) NumRows() int { return len(r.Degree) }

// RowLits returns row i's literal slice (read-only).
func (r *ScoreRows) RowLits(i int32) []pb.Lit { return r.Lits[r.Off[i]:r.Off[i+1]] }

// RowCoefs returns row i's coefficient slice (read-only).
func (r *ScoreRows) RowCoefs(i int32) []int64 { return r.Coefs[r.Off[i]:r.Off[i+1]] }

// RefsOf returns the occurrence refs of variable v (read-only).
func (r *ScoreRows) RefsOf(v pb.Var) []VarRef { return r.VarRefs[r.VarOff[v]:r.VarOff[v+1]] }

// TrueSum returns the true-literal coefficient sum of row i under the given
// full assignment (the scorer's lhs; recomputed from scratch — the scorer
// maintains it incrementally and uses this for invariant checks and rebuilds).
func (r *ScoreRows) TrueSum(i int32, values []bool) int64 {
	var s int64
	for k := r.Off[i]; k < r.Off[i+1]; k++ {
		l := r.Lits[k]
		if values[l.Var()] != l.IsNeg() {
			s += r.Coefs[k]
		}
	}
	return s
}
