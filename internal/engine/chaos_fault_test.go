// Fault-driven variant of the chaos stress test. It lives in package
// engine_test so it can layer the bounds estimators (which import engine)
// and the fault framework on top of the same feature-interleaving loop.
package engine_test

import (
	"math/rand"
	"testing"

	"repro/internal/bounds"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/pb"
)

// TestChaosWithInjectedLPRFailures interleaves injected LPR failures with
// the engine feature stress loop: at every propagation fixpoint the LPR
// estimator runs against the live engine state with its fault points armed
// (panics on ~1-in-3 calls, pivot corruption on ~1-in-4). The injected
// failures must never corrupt the engine — counter invariants hold after
// every recovery — and the final classification must still match
// pb.BruteForce exactly as in the unfaulted chaos test. Bounds that do come
// back are cross-checked against the brute-force optimum for soundness.
func TestChaosWithInjectedLPRFailures(t *testing.T) {
	defer fault.Reset()
	rng := rand.New(rand.NewSource(27182))
	var panics, boundsSeen int
	for iter := 0; iter < 80; iter++ {
		n := 5 + rng.Intn(6)
		p := pb.NewProblem(n)
		for v := 0; v < n; v++ {
			p.SetCost(pb.Var(v), int64(rng.Intn(6)))
		}
		m := 3 + rng.Intn(10)
		for i := 0; i < m; i++ {
			nt := 1 + rng.Intn(4)
			terms := make([]pb.Term, nt)
			for k := range terms {
				terms[k] = pb.Term{
					Coef: int64(1 + rng.Intn(4)),
					Lit:  pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0),
				}
			}
			_ = p.AddConstraint(terms, pb.GE, int64(1+rng.Intn(5)))
		}
		want := pb.BruteForce(p)

		fault.Reset()
		fault.Arm("lpr.solve", fault.Spec{Kind: fault.KindPanic, Prob: 0.34, Seed: int64(iter + 1)})
		fault.Arm("lp.pivot", fault.Spec{Kind: fault.KindCorrupt, Prob: 0.25, Seed: int64(iter + 7)})

		e := engine.New(p)
		if e.SeedUnits() < 0 {
			if want.Feasible {
				t.Fatalf("iter %d: seed claims conflict on feasible instance", iter)
			}
			continue
		}
		est := bounds.LPR{}
		sat, done := false, false
		for conflicts := 0; conflicts < 20000; {
			confl := e.Propagate()
			if confl >= 0 {
				conflicts++
				if rng.Intn(2) == 0 {
					if terms, deg := e.AnalyzeCuttingPlane(confl); terms != nil {
						ci := e.AddCons(terms, deg, true)
						e.ScheduleCheck(ci)
					}
				}
				res := e.AnalyzeConstraint(confl)
				if res.Unsat {
					done = true
					break
				}
				if e.LearnAndBackjump(res) < 0 {
					done = true
					break
				}
				switch rng.Intn(8) {
				case 0:
					e.BacktrackTo(0)
				case 1:
					e.BacktrackTo(0)
					e.ReduceDB()
				}
				continue
			}

			// Propagation fixpoint: run the faulted LPR bound against the
			// live engine state. A panic here is the injected fault — it
			// must leave the engine untouched.
			func() {
				defer func() {
					if r := recover(); r != nil {
						if !fault.IsInjected(r) {
							panic(r)
						}
						panics++
					}
				}()
				red := bounds.Extract(e)
				bres := est.Estimate(e, red, p.Cost, 1<<30, bounds.Budget{})
				if !bres.Failed && bres.Bound > 0 && want.Feasible {
					boundsSeen++
					// Soundness cross-check, valid at decision level 0 only:
					// level-0 assignments hold in every model, so the bound
					// plus the cost of the forced-true literals can never
					// exceed the global optimum. (Deeper in the tree the
					// subtree optimum may exceed the global one, so the
					// check would be meaningless there.)
					if e.DecisionLevel() == 0 {
						path := int64(0)
						for v := 0; v < n; v++ {
							if e.Value(pb.Var(v)) == engine.True {
								path += p.Cost[v]
							}
						}
						if path+bres.Bound > want.Optimum {
							t.Fatalf("iter %d: unsound root bound %d + forced %d > optimum %d",
								iter, bres.Bound, path, want.Optimum)
						}
					}
				}
			}()
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("iter %d: invariants broken after faulted bound: %v", iter, err)
			}

			if e.NumUnsatisfied() == 0 {
				sat, done = true, true
				break
			}
			v := e.PickBranchVar()
			if v < 0 {
				break
			}
			e.Decide(pb.MkLit(v, e.PreferredPhase(v) == engine.False))
		}
		fault.Reset()
		if !done {
			t.Fatalf("iter %d: conflict budget exhausted", iter)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if sat != want.Feasible {
			t.Fatalf("iter %d: sat=%v brute=%v", iter, sat, want.Feasible)
		}
	}
	if panics == 0 {
		t.Fatal("LPR fault never fired inside the chaos loop")
	}
	if boundsSeen == 0 {
		t.Fatal("no successful bounds between faults: nothing cross-checked")
	}
}

// TestChaosWarmStartCorruption layers the full incremental bound pipeline —
// a persistent bounds.Reducer fed by engine trail deltas plus an LPR
// estimator with warm-start state — into the chaos loop, with the
// warm-start crash pivots NaN-corrupted on ~1-in-3 solves and the simplex
// pivots on ~1-in-6. A poisoned basis must only ever trigger the per-column
// or cold-solve fallback: the engine invariants, the Reducer/Extract
// equivalence, the root-bound soundness check, and the final brute-force
// classification must all survive, and warm solves must still happen
// between the injected corruptions.
func TestChaosWarmStartCorruption(t *testing.T) {
	defer fault.Reset()
	rng := rand.New(rand.NewSource(16180))
	var warmSolves, coldSolves, boundsSeen int64
	for iter := 0; iter < 60; iter++ {
		n := 6 + rng.Intn(8)
		p := pb.NewProblem(n)
		for v := 0; v < n; v++ {
			p.SetCost(pb.Var(v), int64(1+rng.Intn(6)))
		}
		m := 5 + rng.Intn(10)
		for i := 0; i < m; i++ {
			nt := 2 + rng.Intn(3)
			terms := make([]pb.Term, nt)
			for k := range terms {
				terms[k] = pb.Term{
					Coef: int64(1 + rng.Intn(3)),
					Lit:  pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(4) == 0),
				}
			}
			_ = p.AddConstraint(terms, pb.GE, int64(1+rng.Intn(4)))
		}
		want := pb.BruteForce(p)

		fault.Reset()
		fault.Arm("lp.warmcrash", fault.Spec{Kind: fault.KindCorrupt, Prob: 0.34, Seed: int64(iter + 1)})
		fault.Arm("lp.pivot", fault.Spec{Kind: fault.KindCorrupt, Prob: 0.17, Seed: int64(iter + 5)})

		e := engine.New(p)
		if e.SeedUnits() < 0 {
			if want.Feasible {
				t.Fatalf("iter %d: seed claims conflict on feasible instance", iter)
			}
			continue
		}
		red := bounds.NewReducer(e)
		st := &bounds.LPRState{}
		est := bounds.LPR{State: st}
		sat, done := false, false
		for conflicts := 0; conflicts < 20000; {
			confl := e.Propagate()
			if confl >= 0 {
				conflicts++
				res := e.AnalyzeConstraint(confl)
				if res.Unsat {
					done = true
					break
				}
				if e.LearnAndBackjump(res) < 0 {
					done = true
					break
				}
				switch rng.Intn(8) {
				case 0:
					e.BacktrackTo(0)
					st.Invalidate() // what core does on restarts
				case 1:
					e.BacktrackTo(0)
					e.ReduceDB()
					st.Invalidate()
				}
				continue
			}

			// Fixpoint: incremental reduction + warm-started LPR under
			// corruption. The reduction must stay Extract-identical even
			// with faults firing inside the LP layer.
			r := red.Reduce()
			fresh := bounds.Extract(e)
			if len(r.Rows) != len(fresh.Rows) || r.Infeasible != fresh.Infeasible {
				t.Fatalf("iter %d: reducer diverged from Extract under faults (rows %d vs %d)",
					iter, len(r.Rows), len(fresh.Rows))
			}
			bres := est.Estimate(e, r, p.Cost, 1<<30, bounds.Budget{})
			if !bres.Failed && bres.Bound > 0 && want.Feasible && e.DecisionLevel() == 0 {
				boundsSeen++
				path := int64(0)
				for v := 0; v < n; v++ {
					if e.Value(pb.Var(v)) == engine.True {
						path += p.Cost[v]
					}
				}
				if path+bres.Bound > want.Optimum {
					t.Fatalf("iter %d: unsound root bound %d + forced %d > optimum %d under warm corruption",
						iter, bres.Bound, path, want.Optimum)
				}
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("iter %d: invariants broken after corrupted warm bound: %v", iter, err)
			}

			if e.NumUnsatisfied() == 0 {
				sat, done = true, true
				break
			}
			v := e.PickBranchVar()
			if v < 0 {
				break
			}
			e.Decide(pb.MkLit(v, e.PreferredPhase(v) == engine.False))
		}
		warmSolves += st.WarmSolves()
		coldSolves += st.ColdSolves()
		red.Detach()
		fault.Reset()
		if !done {
			t.Fatalf("iter %d: conflict budget exhausted", iter)
		}
		if sat != want.Feasible {
			t.Fatalf("iter %d: sat=%v brute=%v", iter, sat, want.Feasible)
		}
	}
	if warmSolves == 0 {
		t.Fatal("no warm LP solves despite the persistent state: warm path never exercised")
	}
	if coldSolves == 0 {
		t.Fatal("no cold LP solves despite injected corruption: fallback never exercised")
	}
}
