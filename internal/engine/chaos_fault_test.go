// Fault-driven variant of the chaos stress test. It lives in package
// engine_test so it can layer the bounds estimators (which import engine)
// and the fault framework on top of the same feature-interleaving loop.
package engine_test

import (
	"math/rand"
	"testing"

	"repro/internal/bounds"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/pb"
)

// TestChaosWithInjectedLPRFailures interleaves injected LPR failures with
// the engine feature stress loop: at every propagation fixpoint the LPR
// estimator runs against the live engine state with its fault points armed
// (panics on ~1-in-3 calls, pivot corruption on ~1-in-4). The injected
// failures must never corrupt the engine — counter invariants hold after
// every recovery — and the final classification must still match
// pb.BruteForce exactly as in the unfaulted chaos test. Bounds that do come
// back are cross-checked against the brute-force optimum for soundness.
func TestChaosWithInjectedLPRFailures(t *testing.T) {
	defer fault.Reset()
	rng := rand.New(rand.NewSource(27182))
	var panics, boundsSeen int
	for iter := 0; iter < 80; iter++ {
		n := 5 + rng.Intn(6)
		p := pb.NewProblem(n)
		for v := 0; v < n; v++ {
			p.SetCost(pb.Var(v), int64(rng.Intn(6)))
		}
		m := 3 + rng.Intn(10)
		for i := 0; i < m; i++ {
			nt := 1 + rng.Intn(4)
			terms := make([]pb.Term, nt)
			for k := range terms {
				terms[k] = pb.Term{
					Coef: int64(1 + rng.Intn(4)),
					Lit:  pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0),
				}
			}
			_ = p.AddConstraint(terms, pb.GE, int64(1+rng.Intn(5)))
		}
		want := pb.BruteForce(p)

		fault.Reset()
		fault.Arm("lpr.solve", fault.Spec{Kind: fault.KindPanic, Prob: 0.34, Seed: int64(iter + 1)})
		fault.Arm("lp.pivot", fault.Spec{Kind: fault.KindCorrupt, Prob: 0.25, Seed: int64(iter + 7)})

		e := engine.New(p)
		if e.SeedUnits() < 0 {
			if want.Feasible {
				t.Fatalf("iter %d: seed claims conflict on feasible instance", iter)
			}
			continue
		}
		est := bounds.LPR{}
		sat, done := false, false
		for conflicts := 0; conflicts < 20000; {
			confl := e.Propagate()
			if confl >= 0 {
				conflicts++
				if rng.Intn(2) == 0 {
					if terms, deg := e.AnalyzeCuttingPlane(confl); terms != nil {
						ci := e.AddCons(terms, deg, true)
						e.ScheduleCheck(ci)
					}
				}
				res := e.AnalyzeConstraint(confl)
				if res.Unsat {
					done = true
					break
				}
				if e.LearnAndBackjump(res) < 0 {
					done = true
					break
				}
				switch rng.Intn(8) {
				case 0:
					e.BacktrackTo(0)
				case 1:
					e.BacktrackTo(0)
					e.ReduceDB()
				}
				continue
			}

			// Propagation fixpoint: run the faulted LPR bound against the
			// live engine state. A panic here is the injected fault — it
			// must leave the engine untouched.
			func() {
				defer func() {
					if r := recover(); r != nil {
						if !fault.IsInjected(r) {
							panic(r)
						}
						panics++
					}
				}()
				red := bounds.Extract(e)
				bres := est.Estimate(e, red, p.Cost, 1<<30, bounds.Budget{})
				if !bres.Failed && bres.Bound > 0 && want.Feasible {
					boundsSeen++
					// Soundness cross-check, valid at decision level 0 only:
					// level-0 assignments hold in every model, so the bound
					// plus the cost of the forced-true literals can never
					// exceed the global optimum. (Deeper in the tree the
					// subtree optimum may exceed the global one, so the
					// check would be meaningless there.)
					if e.DecisionLevel() == 0 {
						path := int64(0)
						for v := 0; v < n; v++ {
							if e.Value(pb.Var(v)) == engine.True {
								path += p.Cost[v]
							}
						}
						if path+bres.Bound > want.Optimum {
							t.Fatalf("iter %d: unsound root bound %d + forced %d > optimum %d",
								iter, bres.Bound, path, want.Optimum)
						}
					}
				}
			}()
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("iter %d: invariants broken after faulted bound: %v", iter, err)
			}

			if e.NumUnsatisfied() == 0 {
				sat, done = true, true
				break
			}
			v := e.PickBranchVar()
			if v < 0 {
				break
			}
			e.Decide(pb.MkLit(v, e.PreferredPhase(v) == engine.False))
		}
		fault.Reset()
		if !done {
			t.Fatalf("iter %d: conflict budget exhausted", iter)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if sat != want.Feasible {
			t.Fatalf("iter %d: sat=%v brute=%v", iter, sat, want.Feasible)
		}
	}
	if panics == 0 {
		t.Fatal("LPR fault never fired inside the chaos loop")
	}
	if boundsSeen == 0 {
		t.Fatal("no successful bounds between faults: nothing cross-checked")
	}
}
