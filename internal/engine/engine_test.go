package engine

import (
	"math/rand"
	"testing"

	"repro/internal/pb"
)

func mkProblem(t *testing.T, n int, build func(p *pb.Problem)) *pb.Problem {
	t.Helper()
	p := pb.NewProblem(n)
	build(p)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEnqueueAndPropagateClause(t *testing.T) {
	// x0 ∨ x1; assert ¬x0 ⇒ x1 propagated.
	p := mkProblem(t, 2, func(p *pb.Problem) {
		_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	})
	e := New(p)
	e.Decide(pb.NegLit(0))
	if confl := e.Propagate(); confl != -1 {
		t.Fatalf("unexpected conflict %d", confl)
	}
	if e.Value(1) != True {
		t.Fatalf("x1 should be propagated true, got %v", e.Value(1))
	}
	if e.Level(1) != 1 {
		t.Fatalf("x1 level=%d want 1", e.Level(1))
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPropagatePBConstraint(t *testing.T) {
	// 3x0 + 2x1 + 1x2 >= 4: assigning ¬x0 forces x1 and x2
	// (slack without x0 is 3−4 <0? watchSum=3 < 4 ⇒ conflict!).
	// Correct example: 3x0 + 2x1 + 2x2 >= 4 with ¬x0: watchSum=4, slack=0,
	// both x1,x2 have coef 2 > 0 ⇒ both forced true.
	p := mkProblem(t, 3, func(p *pb.Problem) {
		if err := p.AddConstraint([]pb.Term{
			{Coef: 3, Lit: pb.PosLit(0)},
			{Coef: 2, Lit: pb.PosLit(1)},
			{Coef: 2, Lit: pb.PosLit(2)},
		}, pb.GE, 4); err != nil {
			t.Fatal(err)
		}
	})
	e := New(p)
	e.Decide(pb.NegLit(0))
	if confl := e.Propagate(); confl != -1 {
		t.Fatalf("unexpected conflict")
	}
	if e.Value(1) != True || e.Value(2) != True {
		t.Fatalf("x1=%v x2=%v want both true", e.Value(1), e.Value(2))
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPropagateConflict(t *testing.T) {
	// x0 + x1 >= 2 (both forced); decide ¬x0 ⇒ conflict.
	p := mkProblem(t, 2, func(p *pb.Problem) {
		if err := p.AddAtLeast([]pb.Lit{pb.PosLit(0), pb.PosLit(1)}, 2); err != nil {
			t.Fatal(err)
		}
	})
	e := New(p)
	e.Decide(pb.NegLit(0))
	if confl := e.Propagate(); confl == -1 {
		t.Fatal("expected conflict")
	}
}

func TestRootPropagation(t *testing.T) {
	// Unit clause at root: x0 forced without decisions.
	p := mkProblem(t, 2, func(p *pb.Problem) {
		_ = p.AddClause(pb.PosLit(0))
		_ = p.AddClause(pb.NegLit(0), pb.PosLit(1))
	})
	e := New(p)
	// Units are discovered lazily: kick propagation by re-adding watch scan.
	// The engine does not auto-propagate degree==coef constraints on AddCons;
	// seed by enqueueing nothing and calling PropagateUnits.
	if n := e.SeedUnits(); n < 0 {
		t.Fatal("seed units found conflict")
	}
	if confl := e.Propagate(); confl != -1 {
		t.Fatal("unexpected conflict")
	}
	if e.Value(0) != True || e.Value(1) != True {
		t.Fatalf("root propagation failed: x0=%v x1=%v", e.Value(0), e.Value(1))
	}
}

func TestBacktrackRestoresState(t *testing.T) {
	p := mkProblem(t, 4, func(p *pb.Problem) {
		_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
		_ = p.AddAtLeast([]pb.Lit{pb.PosLit(1), pb.PosLit(2), pb.PosLit(3)}, 2)
	})
	e := New(p)
	e.Decide(pb.NegLit(0))
	_ = e.Propagate()
	e.Decide(pb.NegLit(2))
	_ = e.Propagate()
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	e.BacktrackTo(0)
	if e.TrailSize() != 0 || e.DecisionLevel() != 0 {
		t.Fatalf("trail=%d level=%d", e.TrailSize(), e.DecisionLevel())
	}
	for v := pb.Var(0); v < 4; v++ {
		if e.Value(v) != Unassigned {
			t.Fatalf("x%d still assigned", v)
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNumUnsatisfiedTracking(t *testing.T) {
	p := mkProblem(t, 2, func(p *pb.Problem) {
		_ = p.AddClause(pb.PosLit(0))
		_ = p.AddClause(pb.PosLit(1))
	})
	e := New(p)
	if e.NumUnsatisfied() != 2 {
		t.Fatalf("unsat=%d want 2", e.NumUnsatisfied())
	}
	e.Decide(pb.PosLit(0))
	_ = e.Propagate()
	if e.NumUnsatisfied() != 1 {
		t.Fatalf("unsat=%d want 1", e.NumUnsatisfied())
	}
	e.BacktrackTo(0)
	if e.NumUnsatisfied() != 2 {
		t.Fatalf("unsat=%d want 2 after backtrack", e.NumUnsatisfied())
	}
}

func TestAnalyzeProducesAssertingClause(t *testing.T) {
	// Classic diamond: deciding ¬x0 then ¬x1 triggers a conflict whose 1UIP
	// clause allows a non-chronological jump.
	p := mkProblem(t, 5, func(p *pb.Problem) {
		_ = p.AddClause(pb.PosLit(0), pb.PosLit(1), pb.PosLit(2)) // x0 ∨ x1 ∨ x2
		_ = p.AddClause(pb.PosLit(0), pb.PosLit(1), pb.PosLit(3)) // x0 ∨ x1 ∨ x3
		_ = p.AddClause(pb.NegLit(2), pb.NegLit(3))               // ¬x2 ∨ ¬x3
	})
	e := New(p)
	e.Decide(pb.NegLit(0))
	if c := e.Propagate(); c != -1 {
		t.Fatal("premature conflict")
	}
	e.Decide(pb.NegLit(1))
	confl := e.Propagate()
	if confl == -1 {
		t.Fatal("expected conflict")
	}
	res := e.AnalyzeConstraint(confl)
	if res.Unsat {
		t.Fatal("not unsat")
	}
	if len(res.Learnt) == 0 {
		t.Fatal("empty learnt clause")
	}
	idx := e.LearnAndBackjump(res)
	if idx < 0 {
		t.Fatal("learn failed")
	}
	// After backjump the asserting literal must be true.
	if e.LitValue(res.Learnt[0]) != True {
		t.Fatalf("asserting literal not true")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeAtLevelZeroIsUnsat(t *testing.T) {
	p := mkProblem(t, 1, func(p *pb.Problem) {
		_ = p.AddClause(pb.PosLit(0))
		_ = p.AddClause(pb.NegLit(0))
	})
	e := New(p)
	if n := e.SeedUnits(); n < 0 {
		return // conflict at seed — fine
	}
	confl := e.Propagate()
	if confl == -1 {
		t.Fatal("expected conflict at root")
	}
	res := e.AnalyzeConstraint(confl)
	if !res.Unsat {
		t.Fatal("expected Unsat")
	}
}

func TestAnalyzeClauseBoundConflictStyle(t *testing.T) {
	// Simulate a bound conflict: decide x0@1, x1@2, x2@3; ω_bc = {¬x0, ¬x2}
	// (x1 not responsible). Backtracking should jump over level 2.
	p := mkProblem(t, 3, func(p *pb.Problem) {
		// No constraints: pure decisions.
	})
	e := New(p)
	e.Decide(pb.PosLit(0))
	_ = e.Propagate()
	e.Decide(pb.PosLit(1))
	_ = e.Propagate()
	e.Decide(pb.PosLit(2))
	_ = e.Propagate()

	seed := []pb.Lit{pb.NegLit(0), pb.NegLit(2)}
	res := e.AnalyzeClause(seed)
	if res.Unsat {
		t.Fatal("unexpected unsat")
	}
	idx := e.LearnAndBackjump(res)
	if idx < 0 {
		t.Fatal("learn failed")
	}
	// Non-chronological: we must be at level 1 (x1's level skipped), with
	// ¬x2 asserted.
	if e.DecisionLevel() != 1 {
		t.Fatalf("level=%d want 1", e.DecisionLevel())
	}
	if e.Value(2) != False {
		t.Fatalf("x2=%v want false", e.Value(2))
	}
	if e.Value(1) != Unassigned {
		t.Fatalf("x1 should have been unassigned by the jump")
	}
}

func TestVSIDSPickHighestActivity(t *testing.T) {
	p := mkProblem(t, 3, func(p *pb.Problem) {})
	e := New(p)
	e.BumpVar(1)
	e.BumpVar(1)
	e.BumpVar(2)
	if v := e.PickBranchVar(); v != 1 {
		t.Fatalf("picked %d want 1", v)
	}
}

func TestPhaseSaving(t *testing.T) {
	p := mkProblem(t, 2, func(p *pb.Problem) {})
	e := New(p)
	if e.PreferredPhase(0) != False {
		t.Fatal("default phase should be False")
	}
	e.Decide(pb.PosLit(0))
	e.BacktrackTo(0)
	if e.PreferredPhase(0) != True {
		t.Fatal("phase not saved")
	}
}

// miniSolve is a complete CDCL SAT loop over the engine — used to validate
// engine behaviour end-to-end against brute force.
func miniSolve(e *Engine, maxConflicts int) (sat bool, ok bool) {
	if e.SeedUnits() < 0 {
		return false, true
	}
	conflicts := 0
	for {
		confl := e.Propagate()
		if confl >= 0 {
			conflicts++
			if conflicts > maxConflicts {
				return false, false
			}
			res := e.AnalyzeConstraint(confl)
			if res.Unsat {
				return false, true
			}
			if e.LearnAndBackjump(res) < 0 {
				return false, true
			}
			continue
		}
		if e.NumUnsatisfied() == 0 {
			return true, true
		}
		v := e.PickBranchVar()
		if v < 0 {
			// Fully assigned but some constraint unsatisfied: conflict must
			// have been caught earlier; treat as inconsistency.
			panic("fully assigned with unsatisfied constraints and no conflict")
		}
		e.Decide(pb.MkLit(v, e.PreferredPhase(v) == False))
	}
}

func TestMiniSolveRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 400; iter++ {
		n := 2 + rng.Intn(6)
		p := pb.NewProblem(n)
		m := 1 + rng.Intn(10)
		for i := 0; i < m; i++ {
			nt := 1 + rng.Intn(4)
			terms := make([]pb.Term, nt)
			for k := range terms {
				terms[k] = pb.Term{
					Coef: int64(1 + rng.Intn(4)),
					Lit:  pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0),
				}
			}
			_ = p.AddConstraint(terms, pb.GE, int64(1+rng.Intn(6)))
		}
		want := pb.BruteForce(p)
		e := New(p)
		sat, done := miniSolve(e, 10000)
		if !done {
			t.Fatalf("iter %d: conflict budget exhausted", iter)
		}
		if sat != want.Feasible {
			t.Fatalf("iter %d: engine sat=%v brute=%v", iter, sat, want.Feasible)
		}
		if sat {
			vals := e.Values()
			if !p.Feasible(vals) {
				t.Fatalf("iter %d: engine returned infeasible assignment", iter)
			}
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

func TestMiniSolveHardCardinality(t *testing.T) {
	// Pigeonhole-style: 4 pigeons, 3 holes — UNSAT, requires real conflict
	// analysis to terminate quickly.
	const P, H = 4, 3
	p := pb.NewProblem(P * H)
	v := func(pi, h int) pb.Var { return pb.Var(pi*H + h) }
	for pi := 0; pi < P; pi++ {
		lits := make([]pb.Lit, H)
		for h := 0; h < H; h++ {
			lits[h] = pb.PosLit(v(pi, h))
		}
		if err := p.AddAtLeast(lits, 1); err != nil {
			t.Fatal(err)
		}
	}
	for h := 0; h < H; h++ {
		lits := make([]pb.Lit, P)
		for pi := 0; pi < P; pi++ {
			lits[pi] = pb.PosLit(v(pi, h))
		}
		if err := p.AddAtMost(lits, 1); err != nil {
			t.Fatal(err)
		}
	}
	e := New(p)
	sat, done := miniSolve(e, 100000)
	if !done {
		t.Fatal("budget exhausted")
	}
	if sat {
		t.Fatal("pigeonhole should be UNSAT")
	}
}

func TestUnsatisfiedConsIteration(t *testing.T) {
	p := mkProblem(t, 3, func(p *pb.Problem) {
		_ = p.AddAtLeast([]pb.Lit{pb.PosLit(0), pb.PosLit(1), pb.PosLit(2)}, 2)
	})
	e := New(p)
	e.Decide(pb.PosLit(0))
	_ = e.Propagate()
	var got []int64
	e.UnsatisfiedCons(func(idx int, c Cons, residual int64) {
		got = append(got, residual)
	})
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("residuals=%v want [1]", got)
	}
	e.Decide(pb.PosLit(1))
	_ = e.Propagate()
	count := 0
	e.UnsatisfiedCons(func(int, Cons, int64) { count++ })
	if count != 0 {
		t.Fatalf("count=%d want 0", count)
	}
}

func TestEnqueueFalseLiteral(t *testing.T) {
	p := mkProblem(t, 1, func(p *pb.Problem) {})
	e := New(p)
	e.Decide(pb.PosLit(0))
	if e.Enqueue(pb.NegLit(0), NoReason) {
		t.Fatal("enqueue of false literal should fail")
	}
	if !e.Enqueue(pb.PosLit(0), NoReason) {
		t.Fatal("enqueue of true literal should succeed")
	}
}

func TestAddConsDuringSearch(t *testing.T) {
	p := mkProblem(t, 3, func(p *pb.Problem) {})
	e := New(p)
	e.Decide(pb.PosLit(0))
	_ = e.Propagate()
	// Add clause ¬x0 ∨ x1 mid-search: watch counters must reflect the
	// current assignment (x0 true ⇒ ¬x0 false).
	idx := e.AddCons([]pb.Term{{Coef: 1, Lit: pb.NegLit(0)}, {Coef: 1, Lit: pb.PosLit(1)}}, 1, true)
	c := e.Cons(idx)
	if c.Slack() != 0 {
		t.Fatalf("slack=%d want 0", c.Slack())
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	p := mkProblem(t, 2, func(p *pb.Problem) {
		_ = p.AddClause(pb.PosLit(0), pb.PosLit(1))
	})
	e := New(p)
	e.Decide(pb.NegLit(0))
	_ = e.Propagate()
	if e.Stats.Decisions != 1 || e.Stats.Propagations == 0 {
		t.Fatalf("stats=%+v", e.Stats)
	}
}
