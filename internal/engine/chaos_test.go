package engine

import (
	"math/rand"
	"testing"

	"repro/internal/pb"
)

// TestChaosAllFeaturesInterleaved stresses every engine feature at once —
// counter propagation, watched learned clauses, cutting-plane derivation,
// in-place degree tightening with the pending queue, restarts, and DB
// reduction — against the ground truth of a brute-force model count. After
// every step the counter invariants must hold, and the search must still
// classify the instance correctly.
func TestChaosAllFeaturesInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(31415))
	for iter := 0; iter < 120; iter++ {
		n := 5 + rng.Intn(6)
		p := pb.NewProblem(n)
		m := 3 + rng.Intn(10)
		for i := 0; i < m; i++ {
			nt := 1 + rng.Intn(4)
			terms := make([]pb.Term, nt)
			for k := range terms {
				terms[k] = pb.Term{
					Coef: int64(1 + rng.Intn(4)),
					Lit:  pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0),
				}
			}
			_ = p.AddConstraint(terms, pb.GE, int64(1+rng.Intn(5)))
		}
		want := pb.BruteForce(p)

		e := New(p)
		if e.SeedUnits() < 0 {
			if want.Feasible {
				t.Fatalf("iter %d: seed claims conflict on feasible instance", iter)
			}
			continue
		}
		// A monotone cost cut we tighten in place as the search runs — like
		// the eq. 10 incumbent constraint, but driven by a scripted schedule
		// that stays below the coefficient sum so feasibility is preserved
		// whenever the instance has a model with few true variables.
		var cutTerms []pb.Term
		for v := 0; v < n; v++ {
			cutTerms = append(cutTerms, pb.Term{Coef: 1, Lit: pb.NegLit(pb.Var(v))})
		}
		// Degree d requires ≥ d variables false, i.e. ≤ n−d true. Keep the
		// schedule at most the brute-force solution's false count so a model
		// survives (when feasible).
		maxFalse := 0
		if want.Feasible {
			for _, b := range want.Values {
				if !b {
					maxFalse++
				}
			}
		}
		cut := e.AddCons(cutTerms, 0, true)
		e.Protect(cut)
		cutDegree := int64(0)

		sat, done := false, false
		for conflicts := 0; conflicts < 20000; {
			confl := e.Propagate()
			if confl >= 0 {
				conflicts++
				if rng.Intn(2) == 0 {
					if terms, deg := e.AnalyzeCuttingPlane(confl); terms != nil {
						ci := e.AddCons(terms, deg, true)
						e.ScheduleCheck(ci)
					}
				}
				res := e.AnalyzeConstraint(confl)
				if res.Unsat {
					done = true
					break
				}
				if e.LearnAndBackjump(res) < 0 {
					done = true
					break
				}
				switch rng.Intn(8) {
				case 0: // restart
					e.BacktrackTo(0)
				case 1: // restart + garbage collect
					e.BacktrackTo(0)
					e.ReduceDB()
				case 2: // tighten the cost cut within the safe schedule
					if int(cutDegree) < maxFalse {
						cutDegree++
						e.UpdateDegree(cut, cutDegree)
					}
				}
				continue
			}
			if e.NumUnsatisfied() == 0 {
				// Check that the learned/protected cut is honoured too.
				sat, done = true, true
				break
			}
			v := e.PickBranchVar()
			if v < 0 {
				break
			}
			e.Decide(pb.MkLit(v, e.PreferredPhase(v) == False))
		}
		if !done {
			t.Fatalf("iter %d: conflict budget exhausted", iter)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		// The tightened cut only forbids assignments with fewer than
		// cutDegree false variables; by the schedule a model survives, so
		// satisfiability classification must match brute force.
		if sat != want.Feasible {
			t.Fatalf("iter %d: sat=%v brute=%v (cutDegree=%d maxFalse=%d)",
				iter, sat, want.Feasible, cutDegree, maxFalse)
		}
		if sat {
			vals := e.Values()
			if !p.Feasible(vals) {
				t.Fatalf("iter %d: infeasible model returned", iter)
			}
			falseCount := 0
			for _, b := range vals {
				if !b {
					falseCount++
				}
			}
			if int64(falseCount) < cutDegree {
				t.Fatalf("iter %d: model violates the protected cut", iter)
			}
		}
	}
}
