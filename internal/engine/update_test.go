package engine

import (
	"testing"

	"repro/internal/pb"
)

// addCostCut installs Σ coefs[v]·¬x_v ≥ degree (the shape of the eq. 10
// incumbent cut) with unclipped coefficients.
func addCostCut(e *Engine, coefs []int64, degree int64) int {
	var terms []pb.Term
	for v, c := range coefs {
		if c > 0 {
			terms = append(terms, pb.Term{Coef: c, Lit: pb.NegLit(pb.Var(v))})
		}
	}
	// Sort descending as the engine requires.
	for i := 1; i < len(terms); i++ {
		for j := i; j > 0 && terms[j].Coef > terms[j-1].Coef; j-- {
			terms[j], terms[j-1] = terms[j-1], terms[j]
		}
	}
	return e.AddCons(terms, degree, true)
}

func TestUpdateDegreePropagates(t *testing.T) {
	// Costs (5,3,2); cut Σ c·¬x ≥ 0 is inert. Tightening to degree 8 forces
	// ¬x0 (coef 5 > slack 10−8=2) once x... with nothing assigned:
	// watchSum=10, slack=2, coef 5 and 3 > 2 ⇒ ¬x0 and ¬x1 implied.
	p := pb.NewProblem(3)
	e := New(p)
	idx := addCostCut(e, []int64{5, 3, 2}, 0)
	if confl := e.Propagate(); confl != -1 {
		t.Fatal("inert cut conflicted")
	}
	e.UpdateDegree(idx, 8)
	if confl := e.Propagate(); confl != -1 {
		t.Fatal("unexpected conflict")
	}
	if e.Value(0) != False || e.Value(1) != False {
		t.Fatalf("x0=%v x1=%v want both false", e.Value(0), e.Value(1))
	}
	if e.Value(2) != Unassigned {
		t.Fatalf("x2 should remain free (coef 2 ≤ slack)")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateDegreeConflicts(t *testing.T) {
	// Assign all variables true, then tighten the cut beyond reach.
	p := pb.NewProblem(2)
	e := New(p)
	idx := addCostCut(e, []int64{4, 4}, 0)
	e.Decide(pb.PosLit(0))
	if e.Propagate() >= 0 {
		t.Fatal("conflict")
	}
	e.Decide(pb.PosLit(1))
	if e.Propagate() >= 0 {
		t.Fatal("conflict")
	}
	// watchSum = 0 (both ¬x false); degree 1 ⇒ conflicting.
	e.UpdateDegree(idx, 1)
	confl := e.Propagate()
	if confl != idx {
		t.Fatalf("confl=%d want %d", confl, idx)
	}
	// Analysis must produce a clause and a backjump.
	res := e.AnalyzeConstraint(confl)
	if res.Unsat {
		t.Fatal("not unsat: level > 0")
	}
	if e.LearnAndBackjump(res) < 0 {
		t.Fatal("learn failed")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateDegreeSurvivesBacktrack(t *testing.T) {
	// Tighten while deep, conflict, backtrack: the pending check must fire
	// again at the shallower level and stay consistent.
	p := pb.NewProblem(3)
	e := New(p)
	idx := addCostCut(e, []int64{3, 3, 3}, 0)
	e.Decide(pb.PosLit(0))
	_ = e.Propagate()
	e.Decide(pb.PosLit(1))
	_ = e.Propagate()
	e.UpdateDegree(idx, 7) // watchSum = 3 (only ¬x2 non-false) < 7 ⇒ conflict
	confl := e.Propagate()
	if confl != idx {
		t.Fatalf("confl=%d want %d", confl, idx)
	}
	e.BacktrackTo(0)
	// At the root watchSum = 9 ≥ 7, slack = 2 < maxCoef 3 ⇒ all ¬x implied.
	if c := e.Propagate(); c != -1 {
		t.Fatalf("unexpected conflict %d", c)
	}
	for v := pb.Var(0); v < 3; v++ {
		if e.Value(v) != False {
			t.Fatalf("x%d=%v want false", v, e.Value(v))
		}
	}
}

func TestUpdateDegreeNoOpWhenSmaller(t *testing.T) {
	p := pb.NewProblem(1)
	e := New(p)
	idx := addCostCut(e, []int64{2}, 2)
	e.UpdateDegree(idx, 1) // weaker: ignored
	if e.Cons(idx).Degree != 2 {
		t.Fatalf("degree=%d want 2", e.Cons(idx).Degree)
	}
}
