package engine

import (
	"math/rand"
	"testing"

	"repro/internal/pb"
)

// BenchmarkPropagateChain measures unit-propagation throughput along a long
// implication chain of binary clauses (one Decide triggers n−1 implications).
func BenchmarkPropagateChain(b *testing.B) {
	const n = 2000
	p := pb.NewProblem(n)
	for v := 0; v < n-1; v++ {
		_ = p.AddClause(pb.NegLit(pb.Var(v)), pb.PosLit(pb.Var(v+1)))
	}
	e := New(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Decide(pb.PosLit(0))
		if confl := e.Propagate(); confl >= 0 {
			b.Fatal("unexpected conflict")
		}
		if e.Value(pb.Var(n-1)) != True {
			b.Fatal("chain did not propagate")
		}
		e.BacktrackTo(0)
	}
	b.ReportMetric(float64(n-1), "implications/op")
}

// BenchmarkPropagatePB measures counter-based propagation through general
// pseudo-Boolean constraints (coefficient sums, not clause watching).
func BenchmarkPropagatePB(b *testing.B) {
	const n = 1200
	p := pb.NewProblem(n)
	// x_{i+1} forced once x_i true: 3·x_i requires... use 2¬x_i + 3x_{i+1} ≥ 3:
	// with x_i true the row needs x_{i+1}.
	for v := 0; v < n-1; v++ {
		_ = p.AddConstraint([]pb.Term{
			{Coef: 2, Lit: pb.NegLit(pb.Var(v))},
			{Coef: 3, Lit: pb.PosLit(pb.Var(v + 1))},
		}, pb.GE, 3)
	}
	e := New(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Decide(pb.PosLit(0))
		if confl := e.Propagate(); confl >= 0 {
			b.Fatal("unexpected conflict")
		}
		e.BacktrackTo(0)
	}
	b.ReportMetric(float64(n-1), "implications/op")
}

// BenchmarkConflictAnalysis measures the full conflict loop (propagate,
// 1UIP analyze, learn, backjump) on phase-transition 3-SAT.
func BenchmarkConflictAnalysis(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 120
	p := pb.NewProblem(n)
	for i := 0; i < int(4.3*float64(n)); i++ {
		lits := make([]pb.Lit, 3)
		for k := range lits {
			lits[k] = pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0)
		}
		_ = p.AddClause(lits...)
	}
	b.ResetTimer()
	conflicts := 0
	for i := 0; i < b.N; i++ {
		e := New(p)
		if e.SeedUnits() < 0 {
			b.Fatal("root unsat")
		}
		for steps := 0; steps < 3000; steps++ {
			confl := e.Propagate()
			if confl >= 0 {
				conflicts++
				res := e.AnalyzeConstraint(confl)
				if res.Unsat {
					break
				}
				if e.LearnAndBackjump(res) < 0 {
					break
				}
				continue
			}
			if e.NumUnsatisfied() == 0 {
				break
			}
			v := e.PickBranchVar()
			if v < 0 {
				break
			}
			e.Decide(pb.MkLit(v, e.PreferredPhase(v) == False))
		}
	}
	b.ReportMetric(float64(conflicts)/float64(b.N), "conflicts/op")
}

// BenchmarkCuttingPlaneAnalysis isolates the Galena-style derivation cost
// relative to plain clause analysis on the same conflicts.
func BenchmarkCuttingPlaneAnalysis(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const n = 80
	p := pb.NewProblem(n)
	for i := 0; i < int(4.3*float64(n)); i++ {
		lits := make([]pb.Lit, 3)
		for k := range lits {
			lits[k] = pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0)
		}
		_ = p.AddClause(lits...)
	}
	b.ResetTimer()
	derived := 0
	for i := 0; i < b.N; i++ {
		e := New(p)
		if e.SeedUnits() < 0 {
			b.Fatal("root unsat")
		}
		for steps := 0; steps < 2000; steps++ {
			confl := e.Propagate()
			if confl >= 0 {
				if terms, _ := e.AnalyzeCuttingPlane(confl); terms != nil {
					derived++
				}
				res := e.AnalyzeConstraint(confl)
				if res.Unsat {
					break
				}
				if e.LearnAndBackjump(res) < 0 {
					break
				}
				continue
			}
			if e.NumUnsatisfied() == 0 {
				break
			}
			v := e.PickBranchVar()
			if v < 0 {
				break
			}
			e.Decide(pb.MkLit(v, e.PreferredPhase(v) == False))
		}
	}
	b.ReportMetric(float64(derived)/float64(b.N), "derivations/op")
}

// --- Propagation-wave benchmarks: SoA engine vs pre-refactor AoS replica ---
//
// buildWaveProblem is the shared workload: a PB implication chain (one
// decision cascades across all variables) overlaid with ternary clauses so
// every assignment touches several occurrence lists and many constraints
// transition to satisfied during the wave (exercising delta notification).
func buildWaveProblem(n int) *pb.Problem {
	p := pb.NewProblem(n)
	for v := 0; v < n-1; v++ {
		_ = p.AddConstraint([]pb.Term{
			{Coef: 2, Lit: pb.NegLit(pb.Var(v))},
			{Coef: 3, Lit: pb.PosLit(pb.Var(v + 1))},
		}, pb.GE, 3)
	}
	// Several overlapping clause families so occurrence rows reach the
	// densities of the paper's routing/synthesis instances (each literal in
	// ~8-10 constraints) rather than a bare chain. Every clause holds a
	// positive literal of a lower-indexed variable, so the all-true cascade
	// from x0 satisfies all of them — the wave exercises satisfaction
	// transitions and delta batching, never clause conflicts.
	for v := 0; v+5 < n; v++ {
		_ = p.AddClause(pb.PosLit(pb.Var(v)), pb.NegLit(pb.Var(v+2)), pb.PosLit(pb.Var(v+5)))
	}
	for v := 0; v+7 < n; v++ {
		_ = p.AddClause(pb.PosLit(pb.Var(v)), pb.NegLit(pb.Var(v+3)), pb.PosLit(pb.Var(v+7)))
	}
	for v := 0; v+4 < n; v++ {
		_ = p.AddClause(pb.PosLit(pb.Var(v)), pb.NegLit(pb.Var(v+1)), pb.PosLit(pb.Var(v+4)))
	}
	for v := 0; v+9 < n; v++ {
		_ = p.AddClause(pb.PosLit(pb.Var(v)), pb.NegLit(pb.Var(v+4)), pb.PosLit(pb.Var(v+9)))
	}
	// Long cardinality windows (routing-style at-least-one rows): every
	// assignment in the wave updates the counters of ~8 windows, but each
	// window transitions to satisfied only once — the bulk of the work is
	// pure counter maintenance, the dominant cost on the paper's families.
	for v := 0; v+16 <= n; v += 2 {
		terms := make([]pb.Term, 16)
		for k := range terms {
			terms[k] = pb.Term{Coef: 1, Lit: pb.PosLit(pb.Var(v + k))}
		}
		_ = p.AddConstraint(terms, pb.GE, 1)
	}
	return p
}

// waveWatcher consumes batched ConsWave deltas (the bounds.Reducer role).
type waveWatcher struct{ sat, unsat int }

func (w *waveWatcher) ConsWave(satisfied, unsatisfied []int32) {
	w.sat += len(satisfied)
	w.unsat += len(unsatisfied)
}
func (w *waveWatcher) ConsAdded(idx int, satisfied bool) {}

// BenchmarkPropagateWaveSoA measures one full propagation wave through the
// struct-of-arrays engine — decide, CSR counter propagation, one batched
// delta flush, backtrack, flush again — with a watcher attached, as in a
// bounds-estimating search. Compare against BenchmarkPropagateWaveAoS (the
// pre-refactor pointer-per-constraint layout) for the layout speedup.
func BenchmarkPropagateWaveSoA(b *testing.B) {
	const n = 1500
	e := New(buildWaveProblem(n))
	w := &waveWatcher{}
	e.SetConsWatcher(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Decide(pb.PosLit(0))
		if confl := e.Propagate(); confl >= 0 {
			b.Fatal("unexpected conflict")
		}
		e.FlushConsDeltas()
		if e.Value(pb.Var(n-1)) != True {
			b.Fatal("wave did not cascade")
		}
		e.BacktrackTo(0)
		e.FlushConsDeltas()
	}
	b.ReportMetric(float64(n-1), "implications/op")
}

// aosCons / aosEngine replicate the PRE-refactor engine (see git history
// before the data-oriented refactor): one heap object per constraint with an
// interleaved term slice, occurrence lists holding (constraint, term-index)
// pairs that chase into the constraint for every coefficient, eager watchSum
// updates in assign followed by a SECOND occurrence walk in propagate, and
// per-transition (unbatched) watcher callbacks. The surrounding bookkeeping
// — value/level/reason/trailPos/phase arrays, stats counters, VSIDS heap
// re-insertion on backtrack — mirrors the old code line for line, so the
// benchmark pair isolates the layout + wave-fusion refactor rather than
// comparing the full engine against a thinner solver.
type aosCons struct {
	Terms             []pb.Term
	Degree            int64
	watchSum, trueSum int64
	maxCoef           int64
	activity          float64 // unused here; part of the historical layout
	removed           bool
	learned           bool
	protected         bool
}

func (c *aosCons) satisfied() bool { return c.trueSum >= c.Degree }

type aosRef struct {
	cons int32
	term int32
}

type aosEngine struct {
	cons     []*aosCons
	occ      [][]aosRef // indexed by pb.Lit
	watches  [][]int32  // learned-clause watch lists (empty here, as in SoA)
	value    []Value
	level    []int32
	reason   []int32
	trailPos []int32
	phase    []Value
	act      []float64
	heap     *varHeap
	trail    []pb.Lit
	trailLim []int
	propHead int

	decisions, propagations, conflicts int64
	maxTrail, numUnsatisfied           int

	onSat, onUnsat func(int) // per-transition (unbatched) watcher
}

func newAoS(p *pb.Problem) *aosEngine {
	n := p.NumVars
	a := &aosEngine{
		occ:      make([][]aosRef, 2*n),
		watches:  make([][]int32, 2*n),
		value:    make([]Value, n),
		level:    make([]int32, n),
		reason:   make([]int32, n),
		trailPos: make([]int32, n),
		phase:    make([]Value, n),
		act:      make([]float64, n),
	}
	for i := 0; i < n; i++ {
		a.value[i] = Unassigned
		a.phase[i] = False
		a.reason[i] = NoReason
	}
	a.heap = newVarHeap(a.act)
	for v := 0; v < n; v++ {
		a.heap.push(pb.Var(v))
	}
	for _, c := range p.Constraints {
		ac := &aosCons{Degree: c.Degree, Terms: append([]pb.Term(nil), c.Terms...)}
		idx := int32(len(a.cons))
		a.cons = append(a.cons, ac)
		for ti, t := range ac.Terms {
			if t.Coef > ac.maxCoef {
				ac.maxCoef = t.Coef
			}
			a.occ[t.Lit] = append(a.occ[t.Lit], aosRef{idx, int32(ti)})
			ac.watchSum += t.Coef
		}
		if !ac.satisfied() {
			a.numUnsatisfied++
		}
	}
	return a
}

func (a *aosEngine) litValue(l pb.Lit) Value {
	v := a.value[l.Var()]
	if v == Unassigned {
		return Unassigned
	}
	if l.IsNeg() {
		return 1 - v
	}
	return v
}

func (a *aosEngine) assign(l pb.Lit, reason int32) {
	v := l.Var()
	if l.IsNeg() {
		a.value[v] = False
	} else {
		a.value[v] = True
	}
	a.level[v] = int32(len(a.trailLim))
	a.reason[v] = reason
	a.trailPos[v] = int32(len(a.trail))
	a.trail = append(a.trail, l)
	if len(a.trail) > a.maxTrail {
		a.maxTrail = len(a.trail)
	}
	for _, ref := range a.occ[l] {
		c := a.cons[ref.cons]
		if c.removed {
			continue
		}
		wasSat := c.satisfied()
		c.trueSum += c.Terms[ref.term].Coef
		if !wasSat && c.satisfied() && !c.learned {
			a.numUnsatisfied--
			if a.onSat != nil {
				a.onSat(int(ref.cons))
			}
		}
	}
	for _, ref := range a.occ[l.Neg()] {
		c := a.cons[ref.cons]
		if c.removed {
			continue
		}
		c.watchSum -= c.Terms[ref.term].Coef
	}
}

func (a *aosEngine) decide(l pb.Lit) {
	a.decisions++
	a.trailLim = append(a.trailLim, len(a.trail))
	a.assign(l, NoReason)
}

// The historical propagateWatches was a large function the compiler never
// inlined; keep the call overhead in the replica.
//
//go:noinline
func (a *aosEngine) propagateWatches(nl pb.Lit) int {
	for range a.watches[nl] {
		panic("no watched clauses in the wave workload")
	}
	return -1
}

func (a *aosEngine) propagate() int {
	for a.propHead < len(a.trail) {
		l := a.trail[a.propHead]
		a.propHead++
		a.propagations++
		nl := l.Neg()
		if confl := a.propagateWatches(nl); confl >= 0 {
			return confl
		}
		for _, ref := range a.occ[nl] {
			c := a.cons[ref.cons]
			if c.Terms[ref.term].Lit != nl {
				continue
			}
			if c.satisfied() {
				continue
			}
			slack := c.watchSum - c.Degree
			if slack < 0 {
				a.conflicts++
				return int(ref.cons)
			}
			if slack >= c.maxCoef {
				continue
			}
			for _, t := range c.Terms {
				if t.Coef <= slack {
					break // terms sorted by descending coefficient
				}
				if a.litValue(t.Lit) == Unassigned {
					a.assign(t.Lit, ref.cons)
				}
			}
		}
	}
	return -1
}

func (a *aosEngine) backtrackTo(lvl int) {
	if lvl >= len(a.trailLim) {
		return
	}
	limit := a.trailLim[lvl]
	for i := len(a.trail) - 1; i >= limit; i-- {
		l := a.trail[i]
		v := l.Var()
		for _, ref := range a.occ[l] {
			c := a.cons[ref.cons]
			if c.removed {
				continue
			}
			wasSat := c.satisfied()
			c.trueSum -= c.Terms[ref.term].Coef
			if wasSat && !c.satisfied() && !c.learned {
				a.numUnsatisfied++
				if a.onUnsat != nil {
					a.onUnsat(int(ref.cons))
				}
			}
		}
		for _, ref := range a.occ[l.Neg()] {
			c := a.cons[ref.cons]
			if c.removed {
				continue
			}
			c.watchSum += c.Terms[ref.term].Coef
		}
		a.phase[v] = a.value[v]
		a.value[v] = Unassigned
		a.reason[v] = NoReason
		a.heap.pushIfAbsent(v)
	}
	a.trail = a.trail[:limit]
	a.trailLim = a.trailLim[:lvl]
	if a.propHead > limit {
		a.propHead = limit
	}
}

// BenchmarkPropagateWaveAoS runs the identical wave workload through the
// pre-refactor replica (unbatched per-transition notifications).
func BenchmarkPropagateWaveAoS(b *testing.B) {
	const n = 1500
	a := newAoS(buildWaveProblem(n))
	sat, unsat := 0, 0
	a.onSat = func(int) { sat++ }
	a.onUnsat = func(int) { unsat++ }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.decide(pb.PosLit(0))
		if confl := a.propagate(); confl >= 0 {
			b.Fatal("unexpected conflict")
		}
		if a.value[n-1] != True {
			b.Fatal("wave did not cascade")
		}
		a.backtrackTo(0)
	}
	b.ReportMetric(float64(n-1), "implications/op")
}
