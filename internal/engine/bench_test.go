package engine

import (
	"math/rand"
	"testing"

	"repro/internal/pb"
)

// BenchmarkPropagateChain measures unit-propagation throughput along a long
// implication chain of binary clauses (one Decide triggers n−1 implications).
func BenchmarkPropagateChain(b *testing.B) {
	const n = 2000
	p := pb.NewProblem(n)
	for v := 0; v < n-1; v++ {
		_ = p.AddClause(pb.NegLit(pb.Var(v)), pb.PosLit(pb.Var(v+1)))
	}
	e := New(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Decide(pb.PosLit(0))
		if confl := e.Propagate(); confl >= 0 {
			b.Fatal("unexpected conflict")
		}
		if e.Value(pb.Var(n-1)) != True {
			b.Fatal("chain did not propagate")
		}
		e.BacktrackTo(0)
	}
	b.ReportMetric(float64(n-1), "implications/op")
}

// BenchmarkPropagatePB measures counter-based propagation through general
// pseudo-Boolean constraints (coefficient sums, not clause watching).
func BenchmarkPropagatePB(b *testing.B) {
	const n = 1200
	p := pb.NewProblem(n)
	// x_{i+1} forced once x_i true: 3·x_i requires... use 2¬x_i + 3x_{i+1} ≥ 3:
	// with x_i true the row needs x_{i+1}.
	for v := 0; v < n-1; v++ {
		_ = p.AddConstraint([]pb.Term{
			{Coef: 2, Lit: pb.NegLit(pb.Var(v))},
			{Coef: 3, Lit: pb.PosLit(pb.Var(v + 1))},
		}, pb.GE, 3)
	}
	e := New(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Decide(pb.PosLit(0))
		if confl := e.Propagate(); confl >= 0 {
			b.Fatal("unexpected conflict")
		}
		e.BacktrackTo(0)
	}
	b.ReportMetric(float64(n-1), "implications/op")
}

// BenchmarkConflictAnalysis measures the full conflict loop (propagate,
// 1UIP analyze, learn, backjump) on phase-transition 3-SAT.
func BenchmarkConflictAnalysis(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 120
	p := pb.NewProblem(n)
	for i := 0; i < int(4.3*float64(n)); i++ {
		lits := make([]pb.Lit, 3)
		for k := range lits {
			lits[k] = pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0)
		}
		_ = p.AddClause(lits...)
	}
	b.ResetTimer()
	conflicts := 0
	for i := 0; i < b.N; i++ {
		e := New(p)
		if e.SeedUnits() < 0 {
			b.Fatal("root unsat")
		}
		for steps := 0; steps < 3000; steps++ {
			confl := e.Propagate()
			if confl >= 0 {
				conflicts++
				res := e.AnalyzeConstraint(confl)
				if res.Unsat {
					break
				}
				if e.LearnAndBackjump(res) < 0 {
					break
				}
				continue
			}
			if e.NumUnsatisfied() == 0 {
				break
			}
			v := e.PickBranchVar()
			if v < 0 {
				break
			}
			e.Decide(pb.MkLit(v, e.PreferredPhase(v) == False))
		}
	}
	b.ReportMetric(float64(conflicts)/float64(b.N), "conflicts/op")
}

// BenchmarkCuttingPlaneAnalysis isolates the Galena-style derivation cost
// relative to plain clause analysis on the same conflicts.
func BenchmarkCuttingPlaneAnalysis(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const n = 80
	p := pb.NewProblem(n)
	for i := 0; i < int(4.3*float64(n)); i++ {
		lits := make([]pb.Lit, 3)
		for k := range lits {
			lits[k] = pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0)
		}
		_ = p.AddClause(lits...)
	}
	b.ResetTimer()
	derived := 0
	for i := 0; i < b.N; i++ {
		e := New(p)
		if e.SeedUnits() < 0 {
			b.Fatal("root unsat")
		}
		for steps := 0; steps < 2000; steps++ {
			confl := e.Propagate()
			if confl >= 0 {
				if terms, _ := e.AnalyzeCuttingPlane(confl); terms != nil {
					derived++
				}
				res := e.AnalyzeConstraint(confl)
				if res.Unsat {
					break
				}
				if e.LearnAndBackjump(res) < 0 {
					break
				}
				continue
			}
			if e.NumUnsatisfied() == 0 {
				break
			}
			v := e.PickBranchVar()
			if v < 0 {
				break
			}
			e.Decide(pb.MkLit(v, e.PreferredPhase(v) == False))
		}
	}
	b.ReportMetric(float64(derived)/float64(b.N), "derivations/op")
}
