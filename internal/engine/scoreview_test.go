package engine

import (
	"math/rand"
	"testing"

	"repro/internal/pb"
)

func randomScoreProblem(rng *rand.Rand, n, m int) *pb.Problem {
	p := pb.NewProblem(n)
	for v := 0; v < n; v++ {
		p.SetCost(pb.Var(v), int64(rng.Intn(5)))
	}
	for i := 0; i < m; i++ {
		nt := 1 + rng.Intn(4)
		terms := make([]pb.Term, nt)
		for k := range terms {
			terms[k] = pb.Term{
				Coef: int64(1 + rng.Intn(4)),
				Lit:  pb.MkLit(pb.Var(rng.Intn(n)), rng.Intn(2) == 0),
			}
		}
		_ = p.AddConstraint(terms, pb.GE, int64(rng.Intn(6)))
	}
	return p
}

// TestScoreRowsMatchesProblem cross-checks the flattened snapshot against the
// source problem: per-row sums under random assignments, and the per-variable
// refs applying exactly the delta a real flip causes.
func TestScoreRowsMatchesProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		n := 2 + rng.Intn(8)
		p := randomScoreProblem(rng, n, 1+rng.Intn(10))
		r := NewScoreRows(p)
		if r.NumRows() != len(p.Constraints) || r.NumVars != p.NumVars {
			t.Fatalf("iter %d: shape mismatch", iter)
		}
		values := make([]bool, n)
		for v := range values {
			values[v] = rng.Intn(2) == 0
		}
		lhs := make([]int64, r.NumRows())
		for i := range p.Constraints {
			c := p.Constraints[i]
			var want int64
			for _, tm := range c.Terms {
				if values[tm.Lit.Var()] != tm.Lit.IsNeg() {
					want += tm.Coef
				}
			}
			got := r.TrueSum(int32(i), values)
			if got != want {
				t.Fatalf("iter %d row %d: TrueSum=%d want %d", iter, i, got, want)
			}
			if r.Degree[i] != c.Degree {
				t.Fatalf("iter %d row %d: degree %d want %d", iter, i, r.Degree[i], c.Degree)
			}
			lhs[i] = got
		}
		// Flip each variable once; the refs' deltas must reproduce the
		// recomputed sums exactly.
		for v := 0; v < n; v++ {
			toTrue := !values[v]
			values[v] = toTrue
			for _, ref := range r.RefsOf(pb.Var(v)) {
				d := ref.Delta
				if !toTrue {
					d = -d
				}
				lhs[ref.Row] += d
			}
			for i := range p.Constraints {
				if got := r.TrueSum(int32(i), values); got != lhs[i] {
					t.Fatalf("iter %d flip %d row %d: delta-updated %d, recomputed %d",
						iter, v, i, lhs[i], got)
				}
			}
		}
	}
}

// TestScoreRowsAliasesNothing mutates the snapshot and checks the problem is
// untouched (the snapshot promises full independence for concurrent readers).
func TestScoreRowsAliasesNothing(t *testing.T) {
	p := pb.NewProblem(2)
	_ = p.AddConstraint([]pb.Term{{Coef: 2, Lit: pb.PosLit(0)}, {Coef: 1, Lit: pb.NegLit(1)}}, pb.GE, 1)
	r := NewScoreRows(p)
	r.Lits[0] = pb.PosLit(1)
	r.Coefs[0] = 99
	r.Degree[0] = 99
	c := p.Constraints[0]
	if c.Terms[0].Coef == 99 || c.Degree == 99 {
		t.Fatal("ScoreRows aliases the problem's constraint storage")
	}
}
