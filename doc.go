// Package repro is a from-scratch Go reproduction of Manquinho &
// Marques-Silva, "Effective Lower Bounding Techniques for Pseudo-Boolean
// Optimization" (DATE 2005).
//
// The root package holds the benchmark suite that regenerates the paper's
// evaluation (see bench_test.go: Table 1 benches and the ablations A1–A6);
// the implementation lives under internal/ and the runnable entry points
// under cmd/ and examples/. Start with README.md for the tour, DESIGN.md
// for the system inventory and experiment index, and EXPERIMENTS.md for
// paper-vs-measured results.
package repro
