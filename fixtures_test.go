package repro

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/milp"
	"repro/internal/opb"
	"repro/internal/pb"
)

// fixtureWant holds the independently computed ground truth for each
// testdata instance (verified by pb.BruteForce inside the test as well —
// the literal values here guard against silent parser drift).
var fixtureWant = map[string]struct {
	feasible bool
	optimum  int64 // meaningful only when feasible and hasObjective
	hasObj   bool
}{
	"vertexcover.opb":  {feasible: true, optimum: 6, hasObj: true},
	"knapsack.opb":     {feasible: true, optimum: 13, hasObj: true},
	"unsat.opb":        {feasible: false},
	"cardinality.opb":  {feasible: true, optimum: 2, hasObj: true},
	"general_pb.opb":   {feasible: true, optimum: 7, hasObj: true},
	"equality.opb":     {feasible: true, optimum: 6, hasObj: true},
	"nonlinear.opb":    {feasible: true, optimum: 2, hasObj: true},
	"negcost.opb":      {feasible: true, optimum: -6, hasObj: true},
	"satisfaction.opb": {feasible: true},
	"bigcoef.opb":      {feasible: true, optimum: 11, hasObj: true},
}

func loadFixture(t *testing.T, name string) *pb.Problem {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, err := opb.Parse(f)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return p
}

// TestFixturesGroundTruth cross-checks the recorded optima against the
// brute-force reference (so the table above cannot rot) and then demands
// that every solver reproduce them.
func TestFixturesGroundTruth(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, e := range entries {
		if e.IsDir() {
			continue // e.g. fuzz-corpus/, replayed by internal/fuzz.TestFuzzCorpus
		}
		want, ok := fixtureWant[e.Name()]
		if !ok {
			t.Fatalf("fixture %s has no recorded ground truth", e.Name())
		}
		seen++
		p := loadFixture(t, e.Name())
		ref := pb.BruteForce(p)
		if ref.Feasible != want.feasible {
			t.Fatalf("%s: brute feasible=%v, table says %v", e.Name(), ref.Feasible, want.feasible)
		}
		if want.feasible && want.hasObj && ref.Optimum != want.optimum {
			t.Fatalf("%s: brute optimum=%d, table says %d", e.Name(), ref.Optimum, want.optimum)
		}
	}
	if seen != len(fixtureWant) {
		t.Fatalf("testdata has %d fixtures, table has %d", seen, len(fixtureWant))
	}
}

func TestFixturesAllSolvers(t *testing.T) {
	lim := baseline.Limits{MaxConflicts: 500000}
	for name, want := range fixtureWant {
		p := loadFixture(t, name)
		runs := map[string]core.Result{
			"pbs":    baseline.PBS(p, lim),
			"galena": baseline.Galena(p, lim),
			"plain":  baseline.Bsolo(p, core.LBNone, lim),
			"mis":    baseline.Bsolo(p, core.LBMIS, lim),
			"lgr":    baseline.Bsolo(p, core.LBLGR, lim),
			"lpr":    baseline.Bsolo(p, core.LBLPR, lim),
		}
		for solver, res := range runs {
			switch {
			case !want.feasible:
				if res.Status != core.StatusUnsat {
					t.Fatalf("%s/%s: status=%v want unsat", name, solver, res.Status)
				}
			case !want.hasObj:
				if res.Status != core.StatusSatisfiable {
					t.Fatalf("%s/%s: status=%v want satisfiable", name, solver, res.Status)
				}
			default:
				if res.Status != core.StatusOptimal || res.Best != want.optimum {
					t.Fatalf("%s/%s: got %v/%d want optimal/%d", name, solver, res.Status, res.Best, want.optimum)
				}
			}
		}
		// MILP column.
		m := milp.Solve(p, milp.Options{MaxNodes: 500000})
		switch {
		case !want.feasible:
			if m.Status != milp.StatusInfeasible {
				t.Fatalf("%s/milp: status=%v want infeasible", name, m.Status)
			}
		case want.hasObj:
			if m.Status != milp.StatusOptimal || m.Best != want.optimum {
				t.Fatalf("%s/milp: got %v/%d want optimal/%d", name, m.Status, m.Best, want.optimum)
			}
		}
	}
}
